"""CPU cluster model (e.g. the Orin AGX's 12-core ARM Cortex-A78AE)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError


@dataclass
class CpuCluster:
    """A homogeneous CPU cluster with DVFS and hot-pluggable cores.

    Attributes
    ----------
    name:
        Marketing name, e.g. ``"ARM Cortex-A78AE"``.
    total_cores:
        Physical core count.
    max_freq_hz:
        Maximum supported clock.
    min_freq_hz:
        Lowest DVFS operating point.
    online_cores:
        Currently enabled cores (power modes take cores offline).
    freq_hz:
        Current clock (power modes lower it).
    ipc:
        Sustained instructions-per-cycle for the serving workload's
        CPU-side code (tokenization, Python dispatch, sampling).  Used to
        convert "CPU work units" into seconds.
    """

    name: str
    total_cores: int
    max_freq_hz: float
    min_freq_hz: float = 115.2e6
    online_cores: int = field(default=0)
    freq_hz: float = field(default=0.0)
    ipc: float = 2.0

    def __post_init__(self) -> None:
        if self.total_cores < 1:
            raise ConfigError(f"CPU needs >= 1 core, got {self.total_cores}")
        if self.max_freq_hz <= 0:
            raise ConfigError("CPU max frequency must be positive")
        if self.min_freq_hz <= 0 or self.min_freq_hz > self.max_freq_hz:
            raise ConfigError("CPU min frequency must be in (0, max]")
        if self.online_cores == 0:
            self.online_cores = self.total_cores
        if self.freq_hz == 0.0:
            self.freq_hz = self.max_freq_hz
        self._validate_state()

    def _validate_state(self) -> None:
        if not (1 <= self.online_cores <= self.total_cores):
            raise ConfigError(
                f"online cores {self.online_cores} outside [1, {self.total_cores}]"
            )
        if not (self.min_freq_hz <= self.freq_hz <= self.max_freq_hz):
            raise ConfigError(
                f"CPU frequency {self.freq_hz:.3e} Hz outside "
                f"[{self.min_freq_hz:.3e}, {self.max_freq_hz:.3e}]"
            )

    # -- runtime control (what nvpmodel does) -----------------------------
    def set_freq(self, freq_hz: float) -> None:
        """Set the cluster clock; raises :class:`ConfigError` if out of range."""
        self.freq_hz = float(freq_hz)
        self._validate_state()

    def set_online_cores(self, n: int) -> None:
        """Enable exactly ``n`` cores."""
        self.online_cores = int(n)
        self._validate_state()

    # -- capability queries -------------------------------------------------
    @property
    def single_core_ops_per_s(self) -> float:
        """Scalar-op throughput of one core at the current clock."""
        return self.freq_hz * self.ipc

    def time_for_serial_work(self, ops: float) -> float:
        """Seconds to retire ``ops`` single-threaded operations."""
        return ops / self.single_core_ops_per_s

    def time_for_parallel_work(self, ops: float, parallel_fraction: float = 1.0) -> float:
        """Seconds for ``ops`` with an Amdahl parallel fraction across online cores."""
        if not (0.0 <= parallel_fraction <= 1.0):
            raise ConfigError("parallel fraction must be within [0, 1]")
        serial = ops * (1.0 - parallel_fraction)
        parallel = ops * parallel_fraction / self.online_cores
        return (serial + parallel) / self.single_core_ops_per_s

    @property
    def freq_ratio(self) -> float:
        """Current clock relative to max (used by the power model)."""
        return self.freq_hz / self.max_freq_hz
