"""First-order thermal model with throttling (extension beyond the paper).

The paper runs short batched workloads and does not report throttling,
but sustained serving on a passively cooled Orin will hit thermal limits.
This lumped-RC model lets the harness study that regime: junction
temperature follows a single-pole response to dissipated power, and when
it crosses ``throttle_temp_c`` the device is stepped down to
``throttle_freq_ratio`` of its clocks until it cools below the
hysteresis point.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError


@dataclass
class ThermalModel:
    """Lumped thermal RC node with throttle hysteresis.

    Attributes
    ----------
    ambient_c:
        Ambient temperature in Celsius.
    r_thermal_c_per_w:
        Junction-to-ambient thermal resistance (C/W).
    tau_s:
        Thermal time constant in seconds.
    throttle_temp_c / resume_temp_c:
        Throttle entry and exit temperatures.
    throttle_freq_ratio:
        Clock multiplier applied while throttled.
    """

    ambient_c: float = 25.0
    r_thermal_c_per_w: float = 1.15
    tau_s: float = 90.0
    throttle_temp_c: float = 92.0
    resume_temp_c: float = 85.0
    throttle_freq_ratio: float = 0.6
    temp_c: float = field(default=0.0)
    throttled: bool = field(default=False, init=False)

    def __post_init__(self) -> None:
        if self.tau_s <= 0 or self.r_thermal_c_per_w <= 0:
            raise ConfigError("thermal constants must be positive")
        if self.resume_temp_c >= self.throttle_temp_c:
            raise ConfigError("resume temperature must be below throttle temperature")
        if not (0.0 < self.throttle_freq_ratio <= 1.0):
            raise ConfigError("throttle_freq_ratio must be in (0, 1]")
        if self.temp_c == 0.0:
            self.temp_c = self.ambient_c

    def steady_state_c(self, power_w: float) -> float:
        """Equilibrium temperature at constant ``power_w``."""
        return self.ambient_c + power_w * self.r_thermal_c_per_w

    def advance(self, power_w: float, dt_s: float) -> float:
        """Advance the RC node by ``dt_s`` seconds at ``power_w`` dissipation.

        Returns the new junction temperature and updates the throttle
        state with hysteresis.
        """
        if dt_s < 0:
            raise ConfigError("dt must be non-negative")
        import math

        target = self.steady_state_c(power_w)
        alpha = math.exp(-dt_s / self.tau_s)
        self.temp_c = target + (self.temp_c - target) * alpha
        if self.throttled:
            if self.temp_c <= self.resume_temp_c:
                self.throttled = False
        elif self.temp_c >= self.throttle_temp_c:
            self.throttled = True
        return self.temp_c

    @property
    def freq_multiplier(self) -> float:
        """Clock multiplier the device should apply right now."""
        return self.throttle_freq_ratio if self.throttled else 1.0
