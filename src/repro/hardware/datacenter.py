"""Datacenter GPU presets, used as comparison baselines.

The paper contrasts its edge observations ("quantization makes small
models slower") with Dettmers et al.'s A100 results ("quantization speeds
up models > 13B").  An A100 preset lets the ablation bench reproduce that
crossover from the same kernel-cost model.
"""

from __future__ import annotations

from repro.hardware.cpu import CpuCluster
from repro.hardware.device import EdgeDevice, register_device
from repro.hardware.gpu import Gpu
from repro.hardware.memory import SharedMemory
from repro.quant.dtypes import Precision
from repro.units import gb_per_s, ghz, gib, mhz, tflops


def a100_sxm_80gb() -> EdgeDevice:
    """NVIDIA A100 SXM 80 GB with a typical EPYC host."""
    return EdgeDevice(
        name="a100-sxm-80gb",
        cpu=CpuCluster(
            name="AMD EPYC 7763 (host)",
            total_cores=64,
            max_freq_hz=ghz(2.45),
            min_freq_hz=ghz(1.5),
            ipc=4.0,
        ),
        gpu=Gpu(
            name="A100 SXM (6912 CUDA cores, 432 tensor cores)",
            cuda_cores=6912,
            max_freq_hz=mhz(1410),
            min_freq_hz=mhz(210),
            peak_flops={
                Precision.FP32: tflops(19.5),
                Precision.FP16: tflops(312.0),
            },
            mma_efficiency=0.70,
            kernel_launch_s=4e-6,
            int8_tensor_core_gemm=True,
        ),
        memory=SharedMemory(
            capacity_bytes=gib(80),
            max_freq_hz=mhz(1593),
            min_freq_hz=mhz(512),
            peak_bandwidth=gb_per_s(2039.0),
            streaming_efficiency=0.85,
            strided_efficiency=0.35,
            reserved_bytes=gib(1.0),
        ),
        unified_memory=False,
        idle_power_w=55.0,
        max_power_w=400.0,
    )


register_device("a100-sxm-80gb", a100_sxm_80gb)
