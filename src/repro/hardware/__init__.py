"""Hardware component models and device presets.

The central object is :class:`~repro.hardware.device.EdgeDevice`, a
composition of a :class:`~repro.hardware.cpu.CpuCluster`, a
:class:`~repro.hardware.gpu.Gpu` and a shared
:class:`~repro.hardware.memory.SharedMemory`.  Presets mirror real boards:

- :func:`~repro.hardware.jetson.orin_agx_64gb` — the paper's testbed.
- :func:`~repro.hardware.jetson.orin_agx_32gb`,
  :func:`~repro.hardware.jetson.xavier_agx_32gb` — related-work devices.
- :func:`~repro.hardware.datacenter.a100_sxm_80gb` — the server baseline
  used for the quantization-crossover contrast (paper §3.3, ref [10]).

Frequencies are mutable at runtime (that is what power modes do); peak
capabilities scale linearly with clock, which is the right first-order
model for both SM math throughput and LPDDR bandwidth.
"""

from repro.hardware.cpu import CpuCluster
from repro.hardware.gpu import Gpu
from repro.hardware.memory import SharedMemory
from repro.hardware.device import EdgeDevice, device_registry, get_device
from repro.hardware.jetson import orin_agx_64gb, orin_agx_32gb, xavier_agx_32gb
from repro.hardware.datacenter import a100_sxm_80gb
from repro.hardware.thermal import ThermalModel

__all__ = [
    "CpuCluster",
    "EdgeDevice",
    "Gpu",
    "SharedMemory",
    "ThermalModel",
    "a100_sxm_80gb",
    "device_registry",
    "get_device",
    "orin_agx_32gb",
    "orin_agx_64gb",
    "xavier_agx_32gb",
]
