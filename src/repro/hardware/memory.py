"""Shared CPU/GPU memory model (LPDDR5 on Jetson, HBM on servers).

The distinguishing feature of Jetson-class devices is a *single* physical
memory shared by CPU and GPU.  Capacity pressure, bandwidth and frequency
scaling therefore affect both sides — which is exactly why the paper's
power-mode H (memory at 665 MHz) inflates decode latency by 370%.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError


@dataclass
class SharedMemory:
    """A DRAM subsystem with frequency-scaled bandwidth.

    Attributes
    ----------
    capacity_bytes:
        Total physical capacity (64 GiB on the paper's Orin AGX).
    max_freq_hz / freq_hz:
        Max and current DRAM clock (EMC frequency on Jetson).
    peak_bandwidth:
        Theoretical bytes/s at max clock (Orin AGX: 204.8 GB/s).
    streaming_efficiency:
        Fraction of peak achieved by large contiguous reads (weights).
    strided_efficiency:
        Fraction of peak achieved by scattered/strided reads (KV cache
        gathers, attention over paged contexts).  Much lower on LPDDR.
    reserved_bytes:
        Carve-out not available to applications (OS, display, carveouts).
    """

    capacity_bytes: int
    max_freq_hz: float
    peak_bandwidth: float
    min_freq_hz: float = 204e6
    freq_hz: float = field(default=0.0)
    streaming_efficiency: float = 0.78
    strided_efficiency: float = 0.11
    reserved_bytes: int = 0

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ConfigError("memory capacity must be positive")
        if self.peak_bandwidth <= 0:
            raise ConfigError("memory bandwidth must be positive")
        for name in ("streaming_efficiency", "strided_efficiency"):
            v = getattr(self, name)
            if not (0.0 < v <= 1.0):
                raise ConfigError(f"{name} must be in (0, 1], got {v}")
        if not (0 <= self.reserved_bytes < self.capacity_bytes):
            raise ConfigError("reserved bytes must be within [0, capacity)")
        if self.freq_hz == 0.0:
            self.freq_hz = self.max_freq_hz
        self._validate_state()

    def _validate_state(self) -> None:
        if not (self.min_freq_hz <= self.freq_hz <= self.max_freq_hz):
            raise ConfigError(
                f"memory frequency {self.freq_hz:.3e} Hz outside "
                f"[{self.min_freq_hz:.3e}, {self.max_freq_hz:.3e}]"
            )

    def set_freq(self, freq_hz: float) -> None:
        """Set the DRAM clock; raises :class:`ConfigError` if out of range."""
        self.freq_hz = float(freq_hz)
        self._validate_state()

    @property
    def freq_ratio(self) -> float:
        """Current DRAM clock relative to max."""
        return self.freq_hz / self.max_freq_hz

    @property
    def effective_ratio(self) -> float:
        """Bandwidth scaling with clock, sub-linear at low frequencies.

        LPDDR access latency does not shrink with the clock, so at low
        EMC frequencies the achievable fraction of the (already reduced)
        peak drops further: ``ratio * (0.55 + 0.45 * ratio)``.  At max
        clock this is exactly 1.
        """
        r = self.freq_ratio
        return r * (0.55 + 0.45 * r)

    @property
    def usable_bytes(self) -> int:
        """Capacity available to applications."""
        return self.capacity_bytes - self.reserved_bytes

    def streaming_bandwidth(self) -> float:
        """Sustained bytes/s for large contiguous transfers at current clock."""
        return self.peak_bandwidth * self.effective_ratio * self.streaming_efficiency

    def strided_bandwidth(self) -> float:
        """Sustained bytes/s for scattered transfers at current clock."""
        return self.peak_bandwidth * self.effective_ratio * self.strided_efficiency

    def transfer_time(self, nbytes: float, strided: bool = False) -> float:
        """Seconds to move ``nbytes`` through DRAM."""
        if nbytes < 0:
            raise ConfigError("transfer size must be non-negative")
        bw = self.strided_bandwidth() if strided else self.streaming_bandwidth()
        return nbytes / bw
