"""Device composition and registry."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.errors import ConfigError
from repro.hardware.cpu import CpuCluster
from repro.hardware.gpu import Gpu
from repro.hardware.memory import SharedMemory


@dataclass
class EdgeDevice:
    """A complete accelerator board: CPU cluster + GPU + (shared) memory.

    ``unified_memory`` distinguishes Jetson-class devices (single LPDDR
    pool shared by CPU and GPU) from discrete-GPU servers (separate HBM);
    on non-unified devices the memory object models the *GPU* memory and
    host RAM is assumed plentiful.

    The mutable frequency state on the components is the device's *current
    operating point*; :mod:`repro.power` mutates it when applying modes.
    """

    name: str
    cpu: CpuCluster
    gpu: Gpu
    memory: SharedMemory
    unified_memory: bool = True
    #: Idle board power in watts (fans, SoC, rails) at default clocks.
    idle_power_w: float = 8.0
    #: Power budget cap in watts (Orin AGX: 60 W at MAXN), informational.
    max_power_w: float = 60.0
    extra: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.idle_power_w < 0 or self.max_power_w <= 0:
            raise ConfigError("device power figures must be positive")

    def snapshot(self) -> Dict[str, float]:
        """Current operating point, for traces and reports."""
        return {
            "gpu_freq_hz": self.gpu.freq_hz,
            "cpu_freq_hz": self.cpu.freq_hz,
            "cpu_online_cores": float(self.cpu.online_cores),
            "mem_freq_hz": self.memory.freq_hz,
        }

    def reset_to_max(self) -> None:
        """Restore the default (MAXN-like) operating point."""
        self.gpu.set_freq(self.gpu.max_freq_hz)
        self.cpu.set_freq(self.cpu.max_freq_hz)
        self.cpu.set_online_cores(self.cpu.total_cores)
        self.memory.set_freq(self.memory.max_freq_hz)


_REGISTRY: Dict[str, Callable[[], EdgeDevice]] = {}


def register_device(name: str, factory: Callable[[], EdgeDevice]) -> None:
    """Register a device preset under ``name`` (lowercase key)."""
    key = name.strip().lower()
    if key in _REGISTRY:
        raise ConfigError(f"device {name!r} already registered")
    _REGISTRY[key] = factory


def device_registry() -> Dict[str, Callable[[], EdgeDevice]]:
    """Read-only view of the preset registry."""
    return dict(_REGISTRY)


def get_device(name: str) -> EdgeDevice:
    """Instantiate a fresh device preset by name.

    Each call returns a new object so experiments can mutate frequency
    state without interfering with each other.
    """
    key = name.strip().lower()
    factory = _REGISTRY.get(key)
    if factory is None:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise ConfigError(f"unknown device {name!r}; known: {known}")
    return factory()
