"""Jetson device presets.

Numbers come from NVIDIA's published specifications:

- Orin AGX 64GB: 12x Cortex-A78AE @ 2.2 GHz, Ampere GPU with 2048 CUDA
  cores @ 1.301 GHz (5.3 FP32 / 10.6 FP16 TFLOP/s), 64 GB LPDDR5 @ 3200 MHz
  (204.8 GB/s), 15-60 W.
- Orin AGX 32GB: 8 CPU cores, 1792 CUDA cores @ 930 MHz, 204.8 GB/s.
- Xavier AGX 32GB: 8x Carmel @ 2.265 GHz, 512-core Volta @ 1.377 GHz,
  LPDDR4x @ 2133 MHz (136.5 GB/s).
"""

from __future__ import annotations

from repro.hardware.cpu import CpuCluster
from repro.hardware.device import EdgeDevice, register_device
from repro.hardware.gpu import Gpu
from repro.hardware.memory import SharedMemory
from repro.quant.dtypes import Precision
from repro.units import gb_per_s, ghz, gib, mhz, tflops


def orin_agx_64gb() -> EdgeDevice:
    """The paper's testbed: Jetson Orin AGX Developer Kit, 64 GB."""
    return EdgeDevice(
        name="jetson-orin-agx-64gb",
        cpu=CpuCluster(
            name="ARM Cortex-A78AE",
            total_cores=12,
            max_freq_hz=ghz(2.2014),
            min_freq_hz=mhz(115.2),
        ),
        gpu=Gpu(
            name="Ampere iGPU (2048 CUDA cores, 64 tensor cores)",
            cuda_cores=2048,
            max_freq_hz=mhz(1301),
            min_freq_hz=mhz(114.75),
            peak_flops={
                Precision.FP32: tflops(5.33),
                Precision.FP16: tflops(10.65),
            },
            mma_efficiency=0.62,
            kernel_launch_s=9e-6,
        ),
        memory=SharedMemory(
            capacity_bytes=gib(64),
            max_freq_hz=mhz(3199),
            min_freq_hz=mhz(204),
            peak_bandwidth=gb_per_s(204.8),
            streaming_efficiency=0.78,
            strided_efficiency=0.11,
            # Ubuntu desktop + JetPack services + CUDA context: what the
            # paper's pre-load jtop baseline shows as already used.
            reserved_bytes=gib(6.0),
        ),
        unified_memory=True,
        idle_power_w=9.0,
        max_power_w=60.0,
    )


def orin_agx_32gb() -> EdgeDevice:
    """The 32 GB Orin AGX used by Seymour et al. (paper ref [6])."""
    return EdgeDevice(
        name="jetson-orin-agx-32gb",
        cpu=CpuCluster(
            name="ARM Cortex-A78AE",
            total_cores=8,
            max_freq_hz=ghz(2.2014),
            min_freq_hz=mhz(115.2),
        ),
        gpu=Gpu(
            name="Ampere iGPU (1792 CUDA cores, 56 tensor cores)",
            cuda_cores=1792,
            max_freq_hz=mhz(930),
            min_freq_hz=mhz(114.75),
            peak_flops={
                Precision.FP32: tflops(3.33),
                Precision.FP16: tflops(6.66),
            },
            mma_efficiency=0.62,
            kernel_launch_s=9e-6,
        ),
        memory=SharedMemory(
            capacity_bytes=gib(32),
            max_freq_hz=mhz(3199),
            min_freq_hz=mhz(204),
            peak_bandwidth=gb_per_s(204.8),
            streaming_efficiency=0.78,
            strided_efficiency=0.11,
            reserved_bytes=gib(3.3),
        ),
        unified_memory=True,
        idle_power_w=8.0,
        max_power_w=40.0,
    )


def xavier_agx_32gb() -> EdgeDevice:
    """Jetson Xavier AGX 32 GB (the authors' earlier poster, ref [7])."""
    return EdgeDevice(
        name="jetson-xavier-agx-32gb",
        cpu=CpuCluster(
            name="NVIDIA Carmel",
            total_cores=8,
            max_freq_hz=ghz(2.2656),
            min_freq_hz=mhz(115.2),
        ),
        gpu=Gpu(
            name="Volta iGPU (512 CUDA cores, 64 tensor cores)",
            cuda_cores=512,
            max_freq_hz=mhz(1377),
            min_freq_hz=mhz(114.75),
            peak_flops={
                Precision.FP32: tflops(1.41),
                Precision.FP16: tflops(2.82),
            },
            mma_efficiency=0.58,
            kernel_launch_s=12e-6,
        ),
        memory=SharedMemory(
            capacity_bytes=gib(32),
            max_freq_hz=mhz(2133),
            min_freq_hz=mhz(204),
            peak_bandwidth=gb_per_s(136.5),
            streaming_efficiency=0.72,
            strided_efficiency=0.10,
            reserved_bytes=gib(3.0),
        ),
        unified_memory=True,
        idle_power_w=8.5,
        max_power_w=30.0,
    )


def orin_nx_16gb() -> EdgeDevice:
    """Jetson Orin NX 16 GB — the mid-range sibling (1024 CUDA cores,
    102.4 GB/s LPDDR5), for cross-device scaling studies."""
    return EdgeDevice(
        name="jetson-orin-nx-16gb",
        cpu=CpuCluster(
            name="ARM Cortex-A78AE",
            total_cores=8,
            max_freq_hz=ghz(2.0),
            min_freq_hz=mhz(115.2),
        ),
        gpu=Gpu(
            name="Ampere iGPU (1024 CUDA cores, 32 tensor cores)",
            cuda_cores=1024,
            max_freq_hz=mhz(918),
            min_freq_hz=mhz(114.75),
            peak_flops={
                Precision.FP32: tflops(1.88),
                Precision.FP16: tflops(3.76),
            },
            mma_efficiency=0.62,
            kernel_launch_s=9e-6,
        ),
        memory=SharedMemory(
            capacity_bytes=gib(16),
            max_freq_hz=mhz(3199),
            min_freq_hz=mhz(204),
            peak_bandwidth=gb_per_s(102.4),
            streaming_efficiency=0.78,
            strided_efficiency=0.11,
            reserved_bytes=gib(2.5),
        ),
        unified_memory=True,
        idle_power_w=6.0,
        max_power_w=25.0,
    )


def orin_nano_8gb() -> EdgeDevice:
    """Jetson Orin Nano 8 GB — the entry-level part (512 CUDA cores,
    68 GB/s); only the smallest models fit."""
    return EdgeDevice(
        name="jetson-orin-nano-8gb",
        cpu=CpuCluster(
            name="ARM Cortex-A78AE",
            total_cores=6,
            max_freq_hz=ghz(1.5),
            min_freq_hz=mhz(115.2),
        ),
        gpu=Gpu(
            name="Ampere iGPU (512 CUDA cores, 16 tensor cores)",
            cuda_cores=512,
            max_freq_hz=mhz(625),
            min_freq_hz=mhz(114.75),
            peak_flops={
                Precision.FP32: tflops(0.64),
                Precision.FP16: tflops(1.28),
            },
            mma_efficiency=0.60,
            kernel_launch_s=10e-6,
        ),
        memory=SharedMemory(
            capacity_bytes=gib(8),
            max_freq_hz=mhz(2133),
            min_freq_hz=mhz(204),
            peak_bandwidth=gb_per_s(68.0),
            streaming_efficiency=0.75,
            strided_efficiency=0.10,
            reserved_bytes=gib(2.0),
        ),
        unified_memory=True,
        idle_power_w=4.5,
        max_power_w=15.0,
    )


register_device("jetson-orin-agx-64gb", orin_agx_64gb)
register_device("jetson-orin-agx-32gb", orin_agx_32gb)
register_device("jetson-xavier-agx-32gb", xavier_agx_32gb)
register_device("jetson-orin-nx-16gb", orin_nx_16gb)
register_device("jetson-orin-nano-8gb", orin_nano_8gb)
