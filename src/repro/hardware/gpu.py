"""GPU model (e.g. the Orin AGX's 2048-core Ampere integrated GPU)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.errors import ConfigError
from repro.quant.dtypes import Precision


@dataclass
class Gpu:
    """An SIMT GPU with precision-dependent math throughput.

    Peak FLOP/s at max clock is given per precision; dequantized INT8/INT4
    matmuls in the bitsandbytes style execute in FP16 after dequantization,
    so their *math* peak equals FP16 — the extra cost is modelled separately
    by :class:`repro.quant.overhead.QuantKernelModel`.

    Attributes
    ----------
    cuda_cores:
        Shader core count (informational, used for launch-overhead scaling).
    max_freq_hz / freq_hz:
        Max and current SM clock.
    peak_flops:
        Map precision -> peak FLOP/s *at max clock*.
    mma_efficiency:
        Fraction of peak achievable on large GEMMs by the runtime's kernels
        (cuBLAS on Jetson reaches ~0.55-0.75 on these shapes).
    kernel_launch_s:
        Host-side cost of launching one kernel (Jetson: ~5-15 us; this is
        the dominant term for small models like Phi-2).
    int8_tensor_core_gemm:
        True if the bitsandbytes INT8 matmul (igemmlt) runs natively on
        this part.  On the paper's Orin AGX (sm_87, bnb of that era) it
        did not — INT8 inference dequantized weights and multiplied in
        FP16, which is why quantization made models *slower* on the edge
        while speeding up large models on A100-class GPUs (paper §3.3).
    """

    name: str
    cuda_cores: int
    max_freq_hz: float
    peak_flops: Dict[Precision, float]
    min_freq_hz: float = 114.75e6
    freq_hz: float = field(default=0.0)
    mma_efficiency: float = 0.62
    kernel_launch_s: float = 9e-6
    int8_tensor_core_gemm: bool = False

    def __post_init__(self) -> None:
        if self.cuda_cores < 1:
            raise ConfigError("GPU needs >= 1 CUDA core")
        if self.max_freq_hz <= 0:
            raise ConfigError("GPU max frequency must be positive")
        if Precision.FP16 not in self.peak_flops:
            raise ConfigError("GPU peak_flops must include FP16")
        if not (0.0 < self.mma_efficiency <= 1.0):
            raise ConfigError("mma_efficiency must be in (0, 1]")
        if self.freq_hz == 0.0:
            self.freq_hz = self.max_freq_hz
        self._validate_state()

    def _validate_state(self) -> None:
        if not (self.min_freq_hz <= self.freq_hz <= self.max_freq_hz):
            raise ConfigError(
                f"GPU frequency {self.freq_hz:.3e} Hz outside "
                f"[{self.min_freq_hz:.3e}, {self.max_freq_hz:.3e}]"
            )

    def set_freq(self, freq_hz: float) -> None:
        """Set the SM clock; raises :class:`ConfigError` if out of range."""
        self.freq_hz = float(freq_hz)
        self._validate_state()

    @property
    def freq_ratio(self) -> float:
        """Current clock relative to max."""
        return self.freq_hz / self.max_freq_hz

    def effective_flops(self, precision: Precision) -> float:
        """Sustained FLOP/s for large GEMMs at the current clock.

        Quantized precisions compute in FP16 after dequantization.
        """
        math_prec = Precision.FP16 if precision.is_quantized else precision
        peak = self.peak_flops.get(math_prec)
        if peak is None:
            raise ConfigError(f"GPU has no peak FLOP/s entry for {math_prec}")
        return peak * self.freq_ratio * self.mma_efficiency

    def launch_overhead(self, n_kernels: int) -> float:
        """Host-side seconds to launch ``n_kernels`` kernels."""
        if n_kernels < 0:
            raise ConfigError("kernel count must be non-negative")
        return n_kernels * self.kernel_launch_s
