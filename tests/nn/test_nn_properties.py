"""Property-based invariants of the numpy NN stack."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.architecture import TransformerArchitecture
from repro.nn import NumpyTransformer
from repro.nn.attention import causal_attention

SEEDS = st.integers(min_value=0, max_value=2**16)


@given(
    seed=SEEDS,
    b=st.integers(1, 3),
    h=st.integers(1, 4),
    t=st.integers(1, 8),
    d=st.sampled_from([4, 8]),
)
@settings(max_examples=60, deadline=None)
def test_attention_output_in_value_hull(seed, b, h, t, d):
    """Attention weights are row-stochastic, so each output coordinate
    lies within the min/max of the visible values."""
    rng = np.random.default_rng(seed)
    q = rng.standard_normal((b, h, t, d)).astype(np.float32)
    k = rng.standard_normal((b, h, t, d)).astype(np.float32)
    v = rng.standard_normal((b, h, t, d)).astype(np.float32)
    out = causal_attention(q, k, v, n_query_groups=1)
    for i in range(t):
        visible = v[:, :, : i + 1, :]
        assert (out[:, :, i, :] <= visible.max(axis=2) + 1e-5).all()
        assert (out[:, :, i, :] >= visible.min(axis=2) - 1e-5).all()


@given(seed=SEEDS)
@settings(max_examples=25, deadline=None)
def test_batch_permutation_equivariance(seed):
    """Reordering the batch reorders the logits and nothing else."""
    arch = TransformerArchitecture(
        name="perm", hf_id="t", vocab_size=64, hidden_size=32,
        n_layers=2, n_heads=2, n_kv_heads=2, head_dim=16,
        intermediate_size=64,
    )
    model = NumpyTransformer(arch, seed=1)
    rng = np.random.default_rng(seed)
    toks = rng.integers(0, 64, size=(4, 6))
    perm = rng.permutation(4)
    out = model.forward(toks)
    out_perm = model.forward(toks[perm])
    assert np.allclose(out[perm], out_perm, atol=1e-5)


@given(seed=SEEDS, extra=st.integers(1, 6))
@settings(max_examples=25, deadline=None)
def test_prefix_logits_independent_of_suffix_length(seed, extra):
    """Causality, property-tested: any suffix leaves prefix logits
    untouched."""
    arch = TransformerArchitecture(
        name="causal", hf_id="t", vocab_size=64, hidden_size=32,
        n_layers=2, n_heads=2, n_kv_heads=1, head_dim=16,
        intermediate_size=64,
    )
    model = NumpyTransformer(arch, seed=2)
    rng = np.random.default_rng(seed)
    prefix = rng.integers(0, 64, size=(1, 5))
    suffix = rng.integers(0, 64, size=(1, extra))
    full = np.concatenate([prefix, suffix], axis=1)
    assert np.allclose(
        model.forward(prefix), model.forward(full)[:, :5], atol=1e-5
    )


@given(seed=SEEDS, scale=st.floats(0.25, 4.0))
@settings(max_examples=25, deadline=None)
def test_rmsnorm_scale_invariance_propagates(seed, scale):
    """RMSNorm models are invariant to scaling the embedding stream of a
    single layer's input; verify at the norm level."""
    from repro.nn import RMSNorm

    rng = np.random.default_rng(seed)
    x = rng.standard_normal((3, 32)).astype(np.float32) + 0.1
    norm = RMSNorm(np.ones(32, np.float32))
    # The eps term breaks exact invariance; allow a small mixed tolerance.
    assert np.allclose(norm(x), norm(x * scale), atol=1e-3, rtol=1e-3)
