"""Numpy NN building blocks."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.nn import LayerNorm, Linear, RMSNorm
from repro.nn.attention import (
    AttentionCache,
    apply_rope,
    causal_attention,
    rope_frequencies,
)
from repro.nn.layers import gelu, silu
from repro.quant.dtypes import Precision


class TestLinear:
    def test_matches_manual_matmul(self, rng):
        w = rng.standard_normal((8, 16)).astype(np.float32)
        b = rng.standard_normal(8).astype(np.float32)
        x = rng.standard_normal((3, 16)).astype(np.float32)
        lin = Linear(w, b)
        assert np.allclose(lin(x), x @ w.T + b, atol=1e-5)

    def test_batched_leading_dims(self, rng):
        w = rng.standard_normal((8, 16)).astype(np.float32)
        x = rng.standard_normal((2, 5, 16)).astype(np.float32)
        assert Linear(w)(x).shape == (2, 5, 8)

    def test_precision_variants_error_ordering(self, rng):
        w = (rng.standard_normal((32, 64)) * 0.05).astype(np.float32)
        x = rng.standard_normal((10, 64)).astype(np.float32)
        ref = Linear(w)(x)
        errs = {}
        for p in (Precision.FP16, Precision.INT8, Precision.INT4):
            out = Linear(w, precision=p)(x)
            errs[p] = np.linalg.norm(out - ref) / np.linalg.norm(ref)
        assert errs[Precision.FP16] < errs[Precision.INT8] < errs[Precision.INT4]
        assert errs[Precision.INT4] < 0.5

    def test_param_count(self, rng):
        w = rng.standard_normal((8, 16)).astype(np.float32)
        assert Linear(w).n_params == 128
        assert Linear(w, np.zeros(8, np.float32)).n_params == 136

    def test_validation(self, rng):
        with pytest.raises(ModelError):
            Linear(np.ones(4))
        with pytest.raises(ModelError):
            Linear(np.ones((4, 4), np.float32), bias=np.ones(5, np.float32))


class TestNorms:
    def test_rmsnorm_unit_scale(self, rng):
        x = rng.standard_normal((4, 64)).astype(np.float32) * 7
        out = RMSNorm(np.ones(64, np.float32))(x)
        rms = np.sqrt((out**2).mean(axis=-1))
        assert np.allclose(rms, 1.0, atol=1e-3)

    def test_layernorm_zero_mean_unit_var(self, rng):
        x = rng.standard_normal((4, 64)).astype(np.float32) * 3 + 5
        out = LayerNorm(np.ones(64, np.float32), np.zeros(64, np.float32))(x)
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-4)
        assert np.allclose(out.var(axis=-1), 1.0, atol=1e-2)

    def test_activations(self):
        assert gelu(np.array([0.0]))[0] == pytest.approx(0.0)
        assert silu(np.array([0.0]))[0] == pytest.approx(0.0)
        assert gelu(np.array([10.0]))[0] == pytest.approx(10.0, rel=1e-3)
        x = np.linspace(-3, 3, 50)
        assert (np.diff(silu(x) - silu(x - 1)) >= -1).all()


class TestRope:
    def test_rotation_preserves_norm(self, rng):
        x = rng.standard_normal((1, 2, 6, 16)).astype(np.float32)
        inv = rope_frequencies(16, 16)
        out = apply_rope(x, np.arange(6), inv, 16)
        assert np.allclose(np.linalg.norm(out, axis=-1),
                           np.linalg.norm(x, axis=-1), atol=1e-4)

    def test_position_zero_is_identity(self, rng):
        x = rng.standard_normal((1, 1, 1, 8)).astype(np.float32)
        inv = rope_frequencies(8, 8)
        assert np.allclose(apply_rope(x, np.array([0]), inv, 8), x, atol=1e-6)

    def test_partial_rotary_leaves_tail_unrotated(self, rng):
        x = rng.standard_normal((1, 1, 4, 16)).astype(np.float32)
        inv = rope_frequencies(16, 8)
        out = apply_rope(x, np.arange(4), inv, 8)
        assert np.allclose(out[..., 8:], x[..., 8:])
        assert not np.allclose(out[..., :8], x[..., :8])

    def test_relative_position_property(self, rng):
        """RoPE attention scores depend only on relative position."""
        q = rng.standard_normal((1, 1, 1, 16)).astype(np.float32)
        k = rng.standard_normal((1, 1, 1, 16)).astype(np.float32)
        inv = rope_frequencies(16, 16)

        def score(pq, pk):
            qr = apply_rope(q, np.array([pq]), inv, 16)
            kr = apply_rope(k, np.array([pk]), inv, 16)
            return float((qr * kr).sum())

        assert score(5, 3) == pytest.approx(score(9, 7), abs=1e-4)

    def test_validation(self):
        with pytest.raises(ModelError):
            rope_frequencies(16, 7)  # odd
        with pytest.raises(ModelError):
            rope_frequencies(8, 16)  # too large


class TestCausalAttention:
    def test_uniform_attention_averages_visible_values(self):
        b, h, t, d = 1, 1, 4, 2
        q = np.zeros((b, h, t, d), np.float32)  # uniform scores
        k = np.zeros((b, h, t, d), np.float32)
        v = np.arange(t, dtype=np.float32).reshape(1, 1, t, 1).repeat(d, -1)
        out = causal_attention(q, k, v, n_query_groups=1)
        # Row i averages values 0..i.
        expected = np.array([np.arange(i + 1).mean() for i in range(t)])
        assert np.allclose(out[0, 0, :, 0], expected, atol=1e-5)

    def test_gqa_matches_repeated_mha(self, rng):
        b, hq, hkv, t, d = 2, 4, 2, 5, 8
        q = rng.standard_normal((b, hq, t, d)).astype(np.float32)
        k = rng.standard_normal((b, hkv, t, d)).astype(np.float32)
        v = rng.standard_normal((b, hkv, t, d)).astype(np.float32)
        gqa = causal_attention(q, k, v, n_query_groups=2)
        mha = causal_attention(q, np.repeat(k, 2, 1), np.repeat(v, 2, 1),
                               n_query_groups=1)
        assert np.allclose(gqa, mha, atol=1e-5)

    def test_future_positions_are_masked(self, rng):
        b, h, t, d = 1, 1, 6, 4
        q = rng.standard_normal((b, h, t, d)).astype(np.float32)
        k = rng.standard_normal((b, h, t, d)).astype(np.float32)
        v = rng.standard_normal((b, h, t, d)).astype(np.float32)
        out1 = causal_attention(q[:, :, :3], k[:, :, :3], v[:, :, :3], 1)
        out2 = causal_attention(q, k, v, 1)
        # First 3 outputs identical: they can't see positions 3..5.
        assert np.allclose(out1, out2[:, :, :3], atol=1e-5)

    def test_decode_geometry_with_past(self, rng):
        q = rng.standard_normal((1, 2, 1, 4)).astype(np.float32)
        k = rng.standard_normal((1, 2, 8, 4)).astype(np.float32)
        v = rng.standard_normal((1, 2, 8, 4)).astype(np.float32)
        out = causal_attention(q, k, v, 1, past_len=7)
        assert out.shape == (1, 2, 1, 4)
        with pytest.raises(ModelError):
            causal_attention(q, k, v, 1, past_len=3)  # geometry mismatch


class TestCache:
    def test_update_concatenates_along_time(self, rng):
        cache = AttentionCache()
        k1 = rng.standard_normal((1, 2, 3, 4)).astype(np.float32)
        v1 = rng.standard_normal((1, 2, 3, 4)).astype(np.float32)
        cache.update(0, k1, v1)
        k2 = rng.standard_normal((1, 2, 1, 4)).astype(np.float32)
        v2 = rng.standard_normal((1, 2, 1, 4)).astype(np.float32)
        kf, vf = cache.update(0, k2, v2)
        assert kf.shape == (1, 2, 4, 4)
        assert cache.seq_len == 4
        assert np.allclose(kf[:, :, :3], k1)
