"""Full numpy transformer: forward, caching, generation, sampling, loss."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.nn import NumpyTransformer, cross_entropy_nll, sample_token
from repro.nn.attention import AttentionCache
from repro.quant.dtypes import Precision


@pytest.fixture(scope="module")
def model(request):
    from repro.models.architecture import TransformerArchitecture

    arch = TransformerArchitecture(
        name="tiny", hf_id="test/tiny", vocab_size=512, hidden_size=64,
        n_layers=2, n_heads=4, n_kv_heads=2, head_dim=16,
        intermediate_size=128,
    )
    return NumpyTransformer(arch, seed=3)


class TestForward:
    def test_logit_shape(self, model):
        toks = np.arange(12).reshape(2, 6)
        assert model.forward(toks).shape == (2, 6, 512)

    def test_deterministic_under_seed(self, tiny_arch):
        m1 = NumpyTransformer(tiny_arch, seed=11)
        m2 = NumpyTransformer(tiny_arch, seed=11)
        toks = np.arange(8).reshape(1, 8)
        assert np.allclose(m1.forward(toks), m2.forward(toks))

    def test_cached_forward_matches_full_forward(self, model):
        toks = (np.arange(20) * 17 % 512).reshape(2, 10)
        full = model.forward(toks)
        cache = AttentionCache()
        model.forward(toks[:, :6], cache)
        part = model.forward(toks[:, 6:], cache)
        assert np.allclose(full[:, 6:], part, atol=1e-4)

    def test_causality_future_tokens_do_not_affect_past(self, model):
        a = (np.arange(8) % 512).reshape(1, 8)
        b = a.copy()
        b[0, -1] = 99  # change the last token only
        la, lb = model.forward(a), model.forward(b)
        assert np.allclose(la[:, :-1], lb[:, :-1], atol=1e-5)
        assert not np.allclose(la[:, -1], lb[:, -1])

    def test_token_range_validated(self, model):
        with pytest.raises(ModelError):
            model.forward(np.array([[600]]))
        with pytest.raises(ModelError):
            model.forward(np.array([1, 2, 3]))  # 1-D

    def test_phi_style_parallel_block_runs(self, tiny_phi_arch):
        m = NumpyTransformer(tiny_phi_arch, seed=5)
        toks = np.arange(10).reshape(2, 5)
        out = m.forward(toks)
        assert out.shape == (2, 5, 512)
        assert np.isfinite(out).all()

    def test_quantized_models_share_fp32_weights(self, tiny_arch):
        """Same seed => precision deltas are pure quantization error."""
        toks = np.arange(8).reshape(1, 8)
        ref = NumpyTransformer(tiny_arch, Precision.FP32, seed=3).forward(toks)
        for p, bound in [(Precision.FP16, 0.01), (Precision.INT8, 0.08),
                         (Precision.INT4, 0.5)]:
            out = NumpyTransformer(tiny_arch, p, seed=3).forward(toks)
            rel = np.linalg.norm(out - ref) / np.linalg.norm(ref)
            assert 0 < rel < bound


class TestGenerate:
    def test_greedy_generation_is_deterministic(self, model):
        prompts = (np.arange(6) % 512).reshape(1, 6)
        g1 = model.generate(prompts, 8)
        g2 = model.generate(prompts, 8)
        assert (g1 == g2).all()
        assert g1.shape == (1, 8)

    def test_generation_matches_stepwise_argmax(self, model):
        prompts = (np.arange(6) % 512).reshape(1, 6)
        gen = model.generate(prompts, 3)
        # Recompute manually without cache.
        seq = prompts.copy()
        for i in range(3):
            nxt = model.forward(seq)[:, -1, :].argmax(-1)
            assert nxt[0] == gen[0, i]
            seq = np.concatenate([seq, nxt[:, None]], axis=1)

    def test_sampled_generation_seeded(self, model):
        prompts = (np.arange(6) % 512).reshape(2, 3)
        a = model.generate(prompts, 5, temperature=1.0, top_k=20, seed=7)
        b = model.generate(prompts, 5, temperature=1.0, top_k=20, seed=7)
        c = model.generate(prompts, 5, temperature=1.0, top_k=20, seed=8)
        assert (a == b).all()
        assert (a != c).any()

    def test_invalid_args(self, model):
        with pytest.raises(ModelError):
            model.generate(np.array([[1, 2]]), 0)


class TestSampling:
    def test_greedy_is_argmax(self, rng):
        z = rng.standard_normal((4, 50)).astype(np.float32)
        assert (sample_token(z, temperature=0.0) == z.argmax(-1)).all()

    def test_top_k_restricts_support(self, rng):
        z = rng.standard_normal((1, 100)).astype(np.float32)
        top3 = set(np.argsort(-z[0])[:3].tolist())
        draws = {
            int(sample_token(z, np.random.default_rng(i), temperature=1.0,
                             top_k=3)[0])
            for i in range(64)
        }
        assert draws <= top3

    def test_top_p_keeps_at_least_one(self, rng):
        z = np.zeros((1, 10), np.float32)
        z[0, 0] = 50.0
        tok = sample_token(z, np.random.default_rng(0), temperature=1.0, top_p=0.01)
        assert tok[0] == 0

    def test_temperature_flattens(self, rng):
        z = np.array([[5.0, 0.0, 0.0, 0.0]], np.float32)
        cold = [int(sample_token(z, np.random.default_rng(i), 0.25)[0])
                for i in range(50)]
        hot = [int(sample_token(z, np.random.default_rng(i), 10.0)[0])
               for i in range(50)]
        assert sum(t != 0 for t in hot) > sum(t != 0 for t in cold)

    def test_validation(self, rng):
        z = np.zeros((1, 4), np.float32)
        with pytest.raises(ModelError):
            sample_token(z, temperature=1.0)  # rng required
        with pytest.raises(ModelError):
            sample_token(z, rng, temperature=-1.0)
        with pytest.raises(ModelError):
            sample_token(z, rng, temperature=1.0, top_k=0)
        with pytest.raises(ModelError):
            sample_token(z, rng, temperature=1.0, top_p=1.5)
        with pytest.raises(ModelError):
            sample_token(np.zeros(4, np.float32))


class TestLoss:
    def test_uniform_logits_give_log_vocab(self):
        logits = np.zeros((1, 5, 100))
        targets = np.zeros((1, 5), dtype=np.int64)
        nll, n = cross_entropy_nll(logits, targets)
        assert n == 5
        assert nll / n == pytest.approx(np.log(100))

    def test_perfect_prediction_gives_zero(self):
        logits = np.full((1, 3, 10), -1e9)
        for i, t in enumerate([1, 2, 3]):
            logits[0, i, t] = 1e9
        nll, n = cross_entropy_nll(logits, np.array([[1, 2, 3]]))
        assert nll == pytest.approx(0.0, abs=1e-6)

    def test_ignore_index_masks(self):
        logits = np.zeros((1, 4, 10))
        targets = np.array([[1, -100, 2, -100]])
        _, n = cross_entropy_nll(logits, targets)
        assert n == 2

    def test_all_masked_returns_zero(self):
        logits = np.zeros((1, 2, 10))
        nll, n = cross_entropy_nll(logits, np.full((1, 2), -100))
        assert (nll, n) == (0.0, 0)

    def test_validation(self):
        with pytest.raises(ModelError):
            cross_entropy_nll(np.zeros((1, 2, 5)), np.zeros((1, 3), dtype=int))
        with pytest.raises(ModelError):
            cross_entropy_nll(np.zeros((1, 1, 5)), np.array([[7]]))
