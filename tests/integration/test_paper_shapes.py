"""Integration tests: the paper's headline findings must hold end-to-end.

These run the full simulated pipeline (engine + allocator + telemetry)
at the paper's configurations and assert the *shape* of every major
claim in §3.  Quantitative accuracy is tracked separately in
EXPERIMENTS.md; these tests protect the qualitative story.
"""

import pytest

from repro.calibration import paperdata
from repro.core import run_experiment
from repro.core.experiment import ExperimentSpec
from repro.core.sweeps import (
    batch_size_sweep,
    power_mode_sweep,
    quantization_sweep,
    seq_len_sweep,
)
from repro.quant.dtypes import Precision

N_RUNS = 2  # enough for deterministic sim; paper uses 5


@pytest.fixture(scope="module")
def llama_batch():
    spec = ExperimentSpec.for_model("llama", n_runs=N_RUNS)
    return batch_size_sweep(spec, batch_sizes=(1, 32, 128))


class TestSection31BatchSize:
    def test_throughput_rises_latency_rises(self, llama_batch):
        tps = [r.throughput_tok_s for r in llama_batch]
        lats = [r.mean_latency_s for r in llama_batch]
        assert tps == sorted(tps)
        assert lats == sorted(lats)

    def test_memory_grows_with_batch(self, llama_batch):
        rams = [r.total_gb for r in llama_batch]
        assert rams == sorted(rams)

    def test_latency_within_2x_of_paper(self, llama_batch):
        for r in llama_batch:
            paper = paperdata.TABLE4_BATCH_WIKITEXT["Llama3"][r.batch_size][1]
            assert 0.5 < r.mean_latency_s / paper < 2.0

    def test_ram_within_25pct_of_paper(self, llama_batch):
        for r in llama_batch:
            paper = paperdata.TABLE4_BATCH_WIKITEXT["Llama3"][r.batch_size][0]
            assert r.model_gb + r.incremental_gb == pytest.approx(paper, rel=0.25)


class TestSection32SeqLen:
    @pytest.fixture(scope="class")
    def llama_seq(self):
        return seq_len_sweep(ExperimentSpec.for_model(
            "llama", workload="longbench", n_runs=N_RUNS))

    def test_throughput_decreases_with_seq_len(self, llama_seq):
        tps = [r.throughput_tok_s for r in llama_seq]
        assert tps == sorted(tps, reverse=True)

    def test_phi2_oom_boundary_matches_paper(self):
        runs = seq_len_sweep(ExperimentSpec.for_model(
            "phi2", workload="longbench", n_runs=1))
        ooms = {r.gen.total_tokens: r.oom for r in runs}
        assert not ooms[128] and not ooms[256]
        assert ooms[512] and ooms[1024]

    def test_large_models_survive_sl_1024(self):
        for model in ("mistral", "deepq"):
            runs = seq_len_sweep(
                ExperimentSpec.for_model(model, workload="longbench", n_runs=1),
                seq_lengths=(1024,))
            assert not runs[0].oom

    def test_memory_grows_with_seq_len(self, llama_seq):
        rams = [r.total_gb for r in llama_seq]
        assert rams == sorted(rams)


class TestSection33Quantization:
    @pytest.fixture(scope="module")
    def quant(self):
        return {
            m: {r.precision: r for r in quantization_sweep(
                ExperimentSpec.for_model(m, n_runs=N_RUNS))}
            for m in ("phi2", "llama", "mistral", "deepq")
        }

    def test_oom_cells_match_table3(self, quant):
        assert quant["mistral"][Precision.FP32].oom
        assert quant["deepq"][Precision.FP32].oom
        assert quant["deepq"][Precision.FP16].oom
        assert not quant["deepq"][Precision.INT8].oom
        assert not quant["phi2"][Precision.FP32].oom

    def test_int8_reduces_ram_but_slows_small_models(self, quant):
        # Llama's footprint is weight-dominated: the full ~46% saving
        # shows.  Phi-2 carries the precision-independent eager-attention
        # buffers on top, diluting the relative saving.
        thresholds = {"phi2": 0.78, "llama": 0.70}
        for m, bound in thresholds.items():
            fp16, int8 = quant[m][Precision.FP16], quant[m][Precision.INT8]
            assert int8.total_gb < bound * fp16.total_gb
            assert int8.mean_latency_s > 1.25 * fp16.mean_latency_s

    def test_int4_latency_worse_than_fp16(self, quant):
        for m in ("phi2", "llama", "mistral"):
            assert quant[m][Precision.INT4].mean_latency_s > \
                quant[m][Precision.FP16].mean_latency_s

    def test_int8_power_below_fp16_and_int4(self, quant):
        for m in ("phi2", "llama", "mistral"):
            p8 = quant[m][Precision.INT8].median_power_w
            assert p8 < quant[m][Precision.FP16].median_power_w
            assert p8 < quant[m][Precision.INT4].median_power_w

    def test_energy_ordering(self, quant):
        """Paper §A.3: INT4 is always the energy loser; FP16 and INT8
        trade places by model (FP16 wins for Llama, INT8 for Mistral),
        staying within a modest band of each other."""
        for m in ("phi2", "llama", "mistral"):
            e = {p: quant[m][p].energy_j for p in
                 (Precision.FP16, Precision.INT8, Precision.INT4)}
            assert e[Precision.INT4] > e[Precision.FP16]
            assert e[Precision.INT4] > e[Precision.INT8]
            ratio = e[Precision.INT8] / e[Precision.FP16]
            assert 0.5 < ratio < 1.5


class TestSection34PowerModes:
    @pytest.fixture(scope="module")
    def modes(self):
        runs = power_mode_sweep(ExperimentSpec.for_model("llama", n_runs=N_RUNS))
        return {r.power_mode: r for r in runs}

    def test_mode_a_cuts_power_with_mild_latency_cost(self, modes):
        maxn, a = modes["MAXN"], modes["A"]
        power_drop = 1 - a.median_power_w / maxn.median_power_w
        lat_rise = a.mean_latency_s / maxn.mean_latency_s - 1
        assert 0.15 < power_drop < 0.40   # paper: -28%
        assert 0.10 < lat_rise < 0.50     # paper: +26%
        assert a.energy_j < maxn.energy_j  # A is energy-favourable

    def test_mode_b_power_floor_but_energy_worse(self, modes):
        maxn, b = modes["MAXN"], modes["B"]
        assert 1 - b.median_power_w / maxn.median_power_w > 0.35  # paper: -51%
        assert b.energy_j > maxn.energy_j

    def test_core_count_modes_have_negligible_latency_impact(self, modes):
        for mode in ("E", "F"):
            assert modes[mode].mean_latency_s == pytest.approx(
                modes["MAXN"].mean_latency_s, rel=0.02
            )

    def test_memory_mode_h_is_catastrophic_for_latency(self, modes):
        maxn, h = modes["MAXN"], modes["H"]
        rise = h.mean_latency_s / maxn.mean_latency_s - 1
        assert 2.5 < rise < 5.5            # paper: +370%
        assert h.median_power_w < 0.7 * maxn.median_power_w  # paper: -52%
        assert h.energy_j > 1.4 * maxn.energy_j              # paper: +72%

    def test_mode_g_sits_between_maxn_and_h(self, modes):
        assert modes["MAXN"].mean_latency_s < modes["G"].mean_latency_s \
            < modes["H"].mean_latency_s


class TestCrossModelOrdering:
    def test_bigger_models_are_slower_and_bigger(self):
        runs = {
            m: run_experiment(ExperimentSpec(model=m, n_runs=1))
            for m in ("phi2", "llama", "mistral")
        }
        assert runs["phi2"].mean_latency_s < runs["llama"].mean_latency_s \
            < runs["mistral"].mean_latency_s
        assert runs["phi2"].model_gb < runs["llama"].model_gb \
            < runs["mistral"].model_gb
