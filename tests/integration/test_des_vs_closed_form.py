"""The DES executor and the closed-form predictor must agree.

``repro.calibration.fitting.predict_latency`` sums the same cost model
the executor advances the simulation clock with; if they drift apart,
calibration would be fitting a different machine than the one the
experiments run on.
"""

import pytest

from repro.calibration.constants import CALIBRATED_COST_PARAMS
from repro.calibration.fitting import predict_latency
from repro.core import ExperimentSpec, run_experiment
from repro.core.experiment import default_precision_for
from repro.engine.request import GenerationSpec


@pytest.mark.parametrize("model,bs,inp,out", [
    ("MS-Phi2", 1, 32, 64),
    ("MS-Phi2", 32, 32, 64),
    ("Llama3", 8, 32, 64),
    ("Llama3", 32, 64, 192),
    ("Mistral-Base", 4, 32, 64),
    ("Deepseek-Qwen", 2, 32, 64),
])
def test_des_matches_closed_form(model, bs, inp, out):
    closed = predict_latency(CALIBRATED_COST_PARAMS, model, bs, inp, out)
    spec = ExperimentSpec(
        model=model,
        precision=default_precision_for(model),
        batch_size=bs,
        gen=GenerationSpec(inp, out),
        n_runs=1,
    )
    measured = run_experiment(spec).mean_latency_s
    assert measured == pytest.approx(closed, rel=0.01)


def test_strided_prediction_close_to_exact():
    exact = predict_latency(CALIBRATED_COST_PARAMS, "Llama3", 32, 256, 768,
                            stride=1)
    coarse = predict_latency(CALIBRATED_COST_PARAMS, "Llama3", 32, 256, 768,
                             stride=8)
    assert coarse == pytest.approx(exact, rel=0.005)
