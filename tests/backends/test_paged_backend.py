"""The vLLM-style paged backend: block admission, pool exhaustion."""

import pytest

from repro.backends import get_backend
from repro.backends.paged import _PagedBatchKV
from repro.core import ExperimentSpec, run_experiment
from repro.errors import ConfigError, OutOfMemoryError
from repro.memsys.allocator import CachingAllocator
from repro.models import get_model
from repro.quant.dtypes import Precision


@pytest.fixture
def kv_spec():
    return get_model("phi2").kv_cache_spec()


class TestAdmissionArithmetic:
    def test_reservation_is_prompt_only_and_block_rounded(self):
        b = get_backend("paged", block_tokens=16)
        bpt = 1000
        # 33 prompt tokens -> 3 blocks; the 64 output tokens are free at
        # admission time (optimistic, continuous-batching semantics).
        assert b.request_kv_reservation(33, 64, bpt) == 3 * 16 * bpt
        hf = get_backend("hf-transformers")
        assert hf.request_kv_reservation(33, 64, bpt) == 97 * bpt
        assert b.request_kv_reservation(33, 64, bpt) < \
            hf.request_kv_reservation(33, 64, bpt)

    def test_live_bytes_grow_by_blocks(self):
        b = get_backend("paged", block_tokens=16)
        bpt = 1000
        assert b.live_kv_bytes(16, 0, 64, bpt) == 16 * bpt
        assert b.live_kv_bytes(16, 1, 64, bpt) == 32 * bpt
        assert b.live_kv_bytes(16, 16, 64, bpt) == 32 * bpt
        assert b.live_kv_bytes(16, 17, 64, bpt) == 48 * bpt

    def test_decode_concat_traffic_is_zero(self):
        assert get_backend("paged").decode_concat_bytes(10**9) == 0.0
        assert get_backend("paged").admits_by_free_blocks is True


class TestPagedBatchKV:
    def _alloc(self, capacity):
        return CachingAllocator(capacity)

    def test_pool_smaller_than_one_block_ooms(self, kv_spec):
        block_bytes = kv_spec.bytes_per_token_per_layer * kv_spec.n_layers * 16
        with pytest.raises(OutOfMemoryError):
            _PagedBatchKV(kv_spec, self._alloc(block_bytes), batch_size=1,
                          block_tokens=16, pool_utilization=0.5)

    def test_mid_decode_pool_exhaustion(self, kv_spec):
        block_bytes = kv_spec.bytes_per_token_per_layer * kv_spec.n_layers * 16
        capacity = 10**9
        # Pool of exactly 2 blocks: the 16-token prefill takes one per
        # sequence, so with batch 2 the pool is full and the first
        # appended token (needing a fresh block per sequence) must OOM.
        kv = _PagedBatchKV(kv_spec, self._alloc(capacity), batch_size=2,
                           block_tokens=16,
                           pool_utilization=2.5 * block_bytes / capacity)
        kv.prefill(16)
        with pytest.raises(OutOfMemoryError):
            kv.append_token()

    def test_release_returns_every_byte(self, kv_spec):
        alloc = self._alloc(10**9)
        kv = _PagedBatchKV(kv_spec, alloc, batch_size=2, block_tokens=16,
                           pool_utilization=0.5)
        kv.prefill(16)
        for _ in range(5):
            kv.append_token()
        assert alloc.reserved_bytes > 0
        kv.release()
        assert alloc.allocated_bytes == 0

    def test_concat_traffic_is_zero(self, kv_spec):
        kv = _PagedBatchKV(kv_spec, self._alloc(10**9), batch_size=1,
                           block_tokens=16, pool_utilization=0.5)
        kv.prefill(16)
        kv.append_token()
        assert kv.concat_traffic_bytes() == 0


class TestEngineIntegration:
    def _run(self, **overrides):
        spec = ExperimentSpec.for_model(
            "phi2", precision=Precision.FP16, batch_size=4, n_runs=1,
            runtime="paged", **overrides)
        return run_experiment(spec)

    def test_deterministic(self):
        a, b = self._run(), self._run()
        assert a.mean_latency_s == b.mean_latency_s
        assert a.energy_j == b.energy_j
        assert a.runtime == "paged"

    def test_pool_reservation_dominates_ram(self):
        # vLLM semantics: 90% of free memory is the block pool, so
        # reported RAM is near the board's usable capacity regardless of
        # the batch actually served.
        paged = self._run()
        hf = run_experiment(ExperimentSpec.for_model(
            "phi2", precision=Precision.FP16, batch_size=4, n_runs=1))
        assert paged.total_gb > hf.total_gb

    def test_as_row_carries_the_runtime(self):
        row = self._run().as_row()
        assert row["runtime"] == "paged"


class TestClusterIntegration:
    def test_pool_exhaustion_preempts_then_completes(self):
        from repro.cluster import EdgeCluster, FleetSpec, NodeSpec
        from repro.cluster.workload import poisson_workload
        from repro.obs import Observer
        from repro.obs.kinds import EJECT

        obs = Observer()
        cluster = EdgeCluster.of(FleetSpec.of(
            [NodeSpec("jetson-orin-agx-64gb", runtime="paged", max_batch=8)],
            model="phi2", precision="fp16", policy="round-robin"),
            observer=obs)
        node = cluster.nodes[0]
        # Pool holds ~2.5 whole requests; prompt-block admission lets in
        # more, so live KV outgrows the pool mid-decode and the youngest
        # must be preempted — but each request fits alone, so every one
        # eventually completes.
        lifetime = node.backend.live_kv_bytes(64, 32, 32, node._kv_per_token)
        node._kv_budget_base = int(2.5 * lifetime)
        node._explicit_kv_budget = True
        report = cluster.run(poisson_workload(50.0, 8, input_tokens=64,
                                              output_tokens=32, seed=3))
        assert report.n_requests == 8
        assert report.completed == 8
        ejects = [i for i in obs.instants
                  if i.name == EJECT and dict(i.args).get("pool_exhausted")]
        assert ejects

    def test_request_too_big_for_the_pool_is_rejected_not_livelocked(self):
        from repro.cluster import EdgeCluster, FleetSpec, NodeSpec
        from repro.cluster.workload import poisson_workload

        cluster = EdgeCluster.of(FleetSpec.of(
            [NodeSpec("jetson-orin-agx-64gb", runtime="paged", max_batch=4)],
            model="phi2", precision="fp16", policy="round-robin"))
        node = cluster.nodes[0]
        # Budget admits the prompt's blocks but can never hold any
        # request's whole lifetime: eviction must escalate to the
        # fleet's capped requeue instead of livelocking at the head.
        node._kv_budget_base = node.backend.request_kv_reservation(
            64, 32, node._kv_per_token) + 1
        node._explicit_kv_budget = True
        report = cluster.run(poisson_workload(5.0, 4, input_tokens=64,
                                              output_tokens=32, seed=3))
        assert report.n_requests == 4
        assert report.rejected == 4
        assert node.as_row()["runtime"] == "paged"

    def test_mixed_fleet_builds(self):
        from repro.cluster import EdgeCluster, FleetSpec, NodeSpec

        cluster = EdgeCluster.of(FleetSpec.of(
            [NodeSpec("jetson-orin-agx-64gb", runtime="paged"),
             NodeSpec("jetson-orin-agx-64gb", runtime="gguf"),
             NodeSpec("jetson-orin-agx-64gb")],
            model="phi2", precision="fp16"))
        assert [n.backend.name for n in cluster.nodes] == \
            ["paged", "gguf", "hf-transformers"]

    def test_unknown_node_runtime_is_a_config_error(self):
        from repro.cluster import NodeSpec

        with pytest.raises(ConfigError, match="unknown runtime backend"):
            NodeSpec("jetson-orin-agx-64gb", runtime="nope")


class TestConfig:
    def test_field_validation(self):
        with pytest.raises(ConfigError, match="block_tokens"):
            get_backend("paged", block_tokens=0)
        with pytest.raises(ConfigError, match="pool_utilization"):
            get_backend("paged", pool_utilization=1.5)
        with pytest.raises(ConfigError, match="kv_read_penalty"):
            get_backend("paged", kv_read_penalty=0.5)

    def test_kv_read_penalty_slows_decode(self):
        from repro.engine.kernels import EngineCostParams
        from repro.hardware import get_device

        arch = get_model("phi2")
        dev = get_device("jetson-orin-agx-64gb")
        params = EngineCostParams()
        slow = get_backend("paged", kv_read_penalty=2.0).make_timer(
            arch, dev, Precision.FP16, params)
        base = get_backend("paged").make_timer(arch, dev, Precision.FP16,
                                               params)
        assert slow.decode_step(4, 2048).seconds > \
            base.decode_step(4, 2048).seconds
