"""GGUF k-quant formats and the llama.cpp-style cost model."""

import dataclasses

import numpy as np
import pytest

from repro.backends import get_backend
from repro.core import ExperimentSpec, run_experiment, spec_fingerprint
from repro.engine.kernels import EngineCostParams
from repro.errors import ConfigError, QuantizationError
from repro.models import get_model
from repro.quant.dtypes import Precision
from repro.quant.gguf import (
    GGUF_TYPES,
    Q4_K,
    Q8_0,
    gguf_rel_error,
    gguf_type_for,
    gguf_weight_bytes,
    quantize_q4_k,
    quantize_q8_0,
)


class TestStorageLayouts:
    def test_bits_per_weight_match_the_format_spec(self):
        assert Q8_0.bits_per_weight == 8.5   # 34 B / 32 weights
        assert Q4_K.bits_per_weight == 4.5   # 144 B / 256 weights

    def test_tensor_bytes_round_up_to_blocks(self):
        assert Q8_0.tensor_bytes(32) == 34
        assert Q8_0.tensor_bytes(33) == 68
        assert Q4_K.tensor_bytes(1) == 144

    def test_precision_mapping(self):
        assert gguf_type_for(Precision.INT8) is Q8_0
        assert gguf_type_for(Precision.INT4) is Q4_K
        assert gguf_type_for(Precision.FP16).bits_per_weight == 16

    def test_gguf_weights_smaller_than_bitsandbytes(self):
        from repro.models.footprint import weight_bytes

        arch = get_model("llama")
        for prec in (Precision.INT8, Precision.INT4):
            assert gguf_weight_bytes(arch, prec) < weight_bytes(arch,
                                                                Precision.FP16)
        # 4.5 vs 8.5 bpw ordering survives the fp16 non-linear tensors.
        assert gguf_weight_bytes(arch, Precision.INT4) < \
            gguf_weight_bytes(arch, Precision.INT8)


class TestRealQuantizers:
    def test_q8_0_roundtrip_is_tight(self, rng):
        w = rng.normal(scale=0.02, size=(64, 128)).astype(np.float32)
        wq = quantize_q8_0(w)
        assert wq.shape == w.shape
        rel = np.linalg.norm(wq - w) / np.linalg.norm(w)
        assert 0 < rel < 0.01

    def test_q4_k_coarser_than_q8_0(self, rng):
        w = rng.normal(scale=0.02, size=(64, 256)).astype(np.float32)
        r8 = np.linalg.norm(quantize_q8_0(w) - w) / np.linalg.norm(w)
        r4 = np.linalg.norm(quantize_q4_k(w) - w) / np.linalg.norm(w)
        assert r8 < r4 < 0.1

    def test_error_report_ordering_and_determinism(self):
        arch = get_model("phi2")
        e8 = gguf_rel_error(arch, "Q8_0")
        e4 = gguf_rel_error(arch, "Q4_K")
        assert 0 < e8.rel_matmul_error < e4.rel_matmul_error
        assert gguf_rel_error(arch, "Q4_K") == e4
        assert gguf_rel_error(arch, "F32").rel_matmul_error == 0.0

    def test_unknown_dtype_is_a_quantization_error(self):
        with pytest.raises(QuantizationError, match="known"):
            gguf_rel_error(get_model("phi2"), "Q2_K")
        assert set(GGUF_TYPES) == {"Q8_0", "Q4_K", "F16", "F32"}

    def test_backend_quant_error_uses_the_precision_mapping(self):
        arch = get_model("phi2")
        report = get_backend("gguf").quant_error(arch, Precision.INT4)
        assert report.gguf_type == "Q4_K"
        assert report == gguf_rel_error(arch, "Q4_K")


def _throughput(runtime, batch_size=1):
    spec = ExperimentSpec.for_model(
        "phi2", precision=Precision.INT4, batch_size=batch_size, n_runs=1,
        runtime=runtime)
    return run_experiment(spec)


class TestCostModel:
    def test_single_sequence_advantage_over_hf(self):
        gguf = _throughput("gguf", batch_size=1)
        hf = _throughput("hf-transformers", batch_size=1)
        assert not gguf.oom and not hf.oom
        assert gguf.throughput_tok_s > hf.throughput_tok_s

    def test_cpu_only_split_is_slower_than_full_offload(self):
        from repro.engine.request import GenerationSpec
        from repro.engine.runtime import ServingEngine
        from repro.hardware import get_device

        def run(n_gpu_layers):
            engine = ServingEngine(
                get_device("jetson-orin-agx-64gb"), get_model("phi2"),
                Precision.INT4,
                backend=get_backend("gguf", n_gpu_layers=n_gpu_layers))
            return engine.run(batch_size=1, gen=GenerationSpec(32, 64),
                              n_runs=1)

        full, cpu_only = run(-1), run(0)
        assert cpu_only.throughput_tok_s < full.throughput_tok_s
        # -1 clamps to the whole stack, same as n_layers exactly.
        exact = run(get_model("phi2").n_layers)
        assert exact.mean_latency_s == full.mean_latency_s

    def test_total_footprint_below_hf_at_int4(self):
        # Q4_K (4.5 bpw) carries slightly more weight bytes than the
        # bitsandbytes 4-bit layout, but the fixed compute buffer beats
        # the PyTorch workspace, so total serving RAM is lower.
        gguf = _throughput("gguf")
        hf = _throughput("hf-transformers")
        assert gguf.total_gb < hf.total_gb

    def test_deterministic(self):
        a, b = _throughput("gguf"), _throughput("gguf")
        assert a.mean_latency_s == b.mean_latency_s
        assert a.energy_j == b.energy_j

    def test_timer_is_memoized_like_the_base(self):
        from repro.hardware import get_device

        timer = get_backend("gguf").make_timer(
            get_model("phi2"), get_device("jetson-orin-agx-64gb"),
            Precision.INT4, EngineCostParams())
        assert timer.decode_step(4, 128) is timer.decode_step(4, 128)
        assert timer.weight_bytes == gguf_weight_bytes(get_model("phi2"),
                                                       Precision.INT4)


class TestConfig:
    def test_cost_params_validate(self):
        from repro.backends.gguf import GGUFCostParams

        with pytest.raises(ConfigError, match="positive"):
            GGUFCostParams(kernel_floor_s=0.0)
        with pytest.raises(ConfigError, match="<= 1"):
            GGUFCostParams(cpu_stream_fraction=1.5)

    def test_fingerprints_differ_per_runtime(self):
        params = EngineCostParams()
        keys = {
            spec_fingerprint(
                ExperimentSpec.for_model("phi2", n_runs=1, runtime=rt),
                params)
            for rt in ("hf-transformers", "gguf", "paged")
        }
        assert len(keys) == 3

    def test_fingerprint_stable_for_same_runtime(self):
        params = EngineCostParams()
        spec = ExperimentSpec.for_model("phi2", n_runs=1, runtime="gguf")
        assert spec_fingerprint(spec, params) == spec_fingerprint(
            dataclasses.replace(spec), params)
