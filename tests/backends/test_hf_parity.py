"""The hf-transformers backend is the pre-refactor engine, bit for bit.

``LegacyReplicaBackend`` below reimplements — verbatim — what
``ServingEngine`` inlined before runtime backends existed: per-layer
checkpoint loading, the calibrated PyTorch workspace formula, a plain
:class:`StepTimer` and the dynamic/static :class:`BatchExecutor`.
Driving the engine once with it and once with the stock
``hf-transformers`` backend must produce *identical* floats (no
tolerance) across the precision × power-mode × kv-mode grid, including
the OOM boundaries and the fast-forward/stepped split.
"""

from dataclasses import dataclass

import pytest

from repro.backends import get_backend
from repro.backends.base import RuntimeBackend
from repro.core import ExperimentSpec, run_experiment
from repro.engine.executor import BatchExecutor
from repro.engine.kernels import StepTimer
from repro.engine.request import GenerationSpec
from repro.engine.runtime import ServingEngine
from repro.hardware import get_device
from repro.models import get_model
from repro.power.modes import get_power_mode
from repro.quant.dtypes import Precision


@dataclass(frozen=True)
class LegacyReplicaBackend(RuntimeBackend):
    """The pre-backend ServingEngine internals, copied exactly.

    Deliberately *not* registered: it exists only to pin the refactor.
    """

    name = "legacy-replica"
    kv_mode: str = "dynamic"

    def weight_bytes(self, arch, precision):
        from repro.models.footprint import weight_bytes

        return weight_bytes(arch, precision)

    def load_weights(self, allocator, arch, precision):
        total = self.weight_bytes(arch, precision)
        per_layer = total // (arch.n_layers + 2)
        remainder = total - per_layer * (arch.n_layers + 2)
        for i in range(arch.n_layers + 2):
            n = per_layer + (remainder if i == 0 else 0)
            allocator.alloc(n, tag=f"weights.{i}")

    def make_timer(self, arch, device, precision, params=None):
        return StepTimer(arch, device, precision, params)

    def workspace_bytes(self, arch, precision, batch_size):
        from repro.calibration.constants import (
            INT4_WORKLOAD_OVERHEAD_GB_PER_BPARAM,
            INT8_WORKLOAD_OVERHEAD_GB_PER_BPARAM,
            RUNTIME_WORKSPACE_GB,
        )

        extra_gb = 0.0
        if precision is Precision.INT8:
            coeff = INT8_WORKLOAD_OVERHEAD_GB_PER_BPARAM
        elif precision is Precision.INT4:
            coeff = INT4_WORKLOAD_OVERHEAD_GB_PER_BPARAM
        else:
            coeff = 0.0
        if coeff:
            extra_gb = coeff * arch.n_params_billions * (batch_size**0.4 - 1.0)
        return int((RUNTIME_WORKSPACE_GB + extra_gb) * 1e9)

    def make_executor(self, timer, allocator, arch, precision, batch_size,
                      fast_forward=True):
        return BatchExecutor(
            timer,
            allocator,
            kv_mode=self.kv_mode,
            workspace_bytes=self.workspace_bytes(arch, precision, batch_size),
            fast_forward=fast_forward,
        )

    def decode_concat_bytes(self, live_kv_bytes):
        return 2 * live_kv_bytes


def _run(backend, model="phi2", precision=Precision.FP16, batch_size=8,
         gen=GenerationSpec(32, 64), power_mode="MAXN", fast_forward=True,
         n_runs=2):
    engine = ServingEngine(get_device("jetson-orin-agx-64gb"),
                           get_model(model), precision, backend=backend,
                           fast_forward=fast_forward)
    return engine.run(batch_size=batch_size, gen=gen, n_runs=n_runs,
                      warmup=1, power_mode=get_power_mode(power_mode))


def assert_identical(a, b):
    """Exact equality on every measured field — no tolerances."""
    assert a.oom == b.oom
    assert a.mean_latency_s == b.mean_latency_s
    assert a.throughput_tok_s == b.throughput_tok_s
    assert a.model_gb == b.model_gb
    assert a.incremental_gb == b.incremental_gb
    assert a.total_gb == b.total_gb
    assert a.median_power_w == b.median_power_w
    assert a.energy_j == b.energy_j
    assert len(a.batches) == len(b.batches)
    for ba, bb in zip(a.batches, b.batches):
        assert ba.prefill_s == bb.prefill_s
        assert ba.decode_s == bb.decode_s
        assert ba.latency_s == bb.latency_s
        assert ba.oom == bb.oom


class TestBitIdenticalGrid:
    @pytest.mark.parametrize("precision", [Precision.FP16, Precision.INT8,
                                           Precision.INT4])
    @pytest.mark.parametrize("power_mode", ["MAXN", "C"])
    def test_precision_power_grid(self, precision, power_mode):
        new = _run(get_backend("hf-transformers"),
                   precision=precision, power_mode=power_mode)
        old = _run(LegacyReplicaBackend(),
                   precision=precision, power_mode=power_mode)
        assert_identical(new, old)

    @pytest.mark.parametrize("kv_mode", ["dynamic", "static"])
    def test_kv_modes(self, kv_mode):
        new = _run(get_backend("hf-transformers", kv_mode=kv_mode))
        old = _run(LegacyReplicaBackend(kv_mode=kv_mode))
        assert_identical(new, old)

    def test_stepped_decode(self):
        new = _run(get_backend("hf-transformers"), fast_forward=False)
        old = _run(LegacyReplicaBackend(), fast_forward=False)
        assert_identical(new, old)
        # Fast-forward itself is bit-identical to stepping (pre-existing
        # invariant, re-pinned here through the backend path).
        assert_identical(new, _run(get_backend("hf-transformers")))

    def test_mid_run_oom_boundary(self):
        kwargs = dict(model="llama", batch_size=256,
                      gen=GenerationSpec(2048, 64), n_runs=1)
        new = _run(get_backend("hf-transformers"), **kwargs)
        old = _run(LegacyReplicaBackend(), **kwargs)
        assert new.oom and old.oom
        assert_identical(new, old)

    def test_load_oom_boundary(self):
        from repro.errors import OutOfMemoryError

        for backend in (get_backend("hf-transformers"),
                        LegacyReplicaBackend()):
            with pytest.raises(OutOfMemoryError):
                ServingEngine(get_device("jetson-orin-agx-64gb"),
                              get_model("mistral"), Precision.FP32,
                              backend=backend)


class TestSpecPathParity:
    def test_run_experiment_default_is_the_hf_backend(self):
        spec = ExperimentSpec.for_model("phi2", batch_size=4, n_runs=1)
        explicit = ExperimentSpec.for_model("phi2", batch_size=4, n_runs=1,
                                            runtime="hf-transformers")
        a = run_experiment(spec)
        b = run_experiment(explicit)
        assert a.runtime == b.runtime == "hf-transformers"
        assert_identical(a, b)

    def test_engine_default_backend_is_hf(self):
        engine = ServingEngine(get_device("jetson-orin-agx-64gb"),
                               get_model("phi2"), Precision.FP16)
        assert engine.backend.name == "hf-transformers"
        assert engine.kv_mode == "dynamic"

    def test_observed_spans_match_across_paths(self):
        from repro.obs import Observer

        spans = []
        for backend in (get_backend("hf-transformers"),
                        LegacyReplicaBackend()):
            obs = Observer()
            engine = ServingEngine(get_device("jetson-orin-agx-64gb"),
                                   get_model("phi2"), Precision.FP16,
                                   backend=backend, observer=obs)
            engine.run(batch_size=2, gen=GenerationSpec(16, 16), n_runs=1)
            spans.append([(s.name, s.start_s, s.end_s) for s in obs.spans])
        assert spans[0] == spans[1]
