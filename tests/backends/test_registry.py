"""The backend registry's typed-error and configuration contract."""

import pytest

import repro
import repro.backends as backends
from repro.backends import (
    RuntimeBackend,
    get_backend,
    list_backends,
    register_backend,
    resolve_backend,
)
from repro.backends.registry import _BACKENDS
from repro.errors import ConfigError


class TestLookup:
    def test_builtins_are_registered(self):
        assert {"gguf", "hf-transformers", "paged"} <= set(list_backends())

    def test_list_is_sorted(self):
        assert list_backends() == sorted(list_backends())

    def test_unknown_name_is_a_config_error_listing_known(self):
        with pytest.raises(ConfigError, match="unknown runtime backend"):
            get_backend("nope")
        with pytest.raises(ConfigError, match="hf-transformers"):
            get_backend("nope")

    def test_non_string_is_a_config_error(self):
        with pytest.raises(ConfigError, match="must be a string"):
            get_backend(42)

    def test_name_is_normalised(self):
        assert get_backend("  GGUF ").name == "gguf"

    def test_kwargs_configure_the_instance(self):
        b = get_backend("hf-transformers", kv_mode="static")
        assert b.kv_mode == "static"
        with pytest.raises(ConfigError, match="kv_mode"):
            get_backend("hf-transformers", kv_mode="magic")

    def test_each_call_is_a_fresh_instance(self):
        assert get_backend("gguf") is not get_backend("gguf")


class TestRegisterDecorator:
    def test_round_trip(self):
        @register_backend
        class Dummy(RuntimeBackend):
            name = "test-dummy"

        try:
            assert "test-dummy" in list_backends()
            assert isinstance(get_backend("test-dummy"), Dummy)
        finally:
            del _BACKENDS["test-dummy"]

    def test_duplicate_name_is_refused(self):
        from repro.backends.hf import HFTransformersBackend

        class Imposter(RuntimeBackend):
            name = HFTransformersBackend.name

        with pytest.raises(ConfigError, match="already registered"):
            register_backend(Imposter)

    def test_missing_name_is_refused(self):
        class Nameless(RuntimeBackend):
            name = ""

        with pytest.raises(ConfigError, match="non-empty"):
            register_backend(Nameless)


class TestResolve:
    def test_none_resolves_to_the_default(self):
        assert resolve_backend(None).name == "hf-transformers"

    def test_instances_pass_through(self):
        b = get_backend("paged")
        assert resolve_backend(b) is b

    def test_strings_resolve_by_name(self):
        assert resolve_backend("gguf").name == "gguf"


class TestBackendIdentity:
    def test_config_payload_covers_name_and_fields(self):
        payload = get_backend("paged", block_tokens=32).config_payload()
        assert payload["name"] == "paged"
        assert payload["block_tokens"] == 32
        assert payload["pool_utilization"] == 0.90

    def test_nested_dataclass_fields_flatten(self):
        payload = get_backend("gguf").config_payload()
        assert payload["cost"]["kernel_fusion"] == 0.6

    def test_with_replaces_configuration(self):
        b = get_backend("hf-transformers").with_(kv_mode="static")
        assert b.kv_mode == "static"

    def test_every_builtin_has_a_description(self):
        for name in ("gguf", "hf-transformers", "paged"):
            assert get_backend(name).description


class TestFacadeReexports:
    def test_facade_exports_the_registry_api(self):
        assert repro.get_backend is get_backend
        assert repro.list_backends is list_backends
        assert repro.register_backend is register_backend
        assert repro.RuntimeBackend is RuntimeBackend
        for name in ("get_backend", "list_backends", "register_backend",
                     "RuntimeBackend", "runtime_sweep", "runtime_comparison"):
            assert name in repro.__all__

    def test_package_lazy_exports_concrete_classes(self):
        assert backends.GGUFBackend is type(get_backend("gguf"))
        assert backends.HFTransformersBackend is type(
            get_backend("hf-transformers"))
        assert backends.PagedBackend is type(get_backend("paged"))
        with pytest.raises(AttributeError):
            backends.NoSuchBackend
