"""Sliding-window perplexity and the analytical Table-3 pipeline."""

import numpy as np
import pytest

from repro.calibration import paperdata
from repro.errors import ModelError
from repro.hardware import get_device
from repro.nn import NumpyTransformer
from repro.perplexity import (
    perplexity_table,
    predicted_perplexity,
    sliding_window_perplexity,
)
from repro.perplexity.analytical import fits_on_device
from repro.quant.dtypes import Precision


@pytest.fixture(scope="module")
def tiny_model():
    from repro.models.architecture import TransformerArchitecture

    arch = TransformerArchitecture(
        name="tiny", hf_id="t", vocab_size=256, hidden_size=48,
        n_layers=2, n_heads=4, n_kv_heads=4, head_dim=12,
        intermediate_size=96,
    )
    return NumpyTransformer(arch, seed=2)


class TestEvaluator:
    def test_random_model_near_uniform_perplexity(self, tiny_model, rng):
        """An untrained model's perplexity sits near vocab size."""
        ids = rng.integers(0, 256, size=300)
        ppl = sliding_window_perplexity(tiny_model, ids, window=128, stride=64)
        assert 0.3 * 256 < ppl < 3 * 256

    def test_each_token_scored_once(self, tiny_model, rng):
        """Window/stride choices change context, not token coverage, so
        perplexities stay within a tight band."""
        ids = rng.integers(0, 256, size=400)
        p1 = sliding_window_perplexity(tiny_model, ids, window=128, stride=64)
        p2 = sliding_window_perplexity(tiny_model, ids, window=128, stride=128)
        assert p1 == pytest.approx(p2, rel=0.06)

    def test_repetitive_text_scores_better_than_random(self, tiny_model, rng):
        random_ids = rng.integers(0, 256, size=300)
        repetitive = np.tile(np.arange(10), 30)
        p_rand = sliding_window_perplexity(tiny_model, random_ids, 128, 64)
        p_rep = sliding_window_perplexity(tiny_model, repetitive, 128, 64)
        # Positional structure makes repeated text mildly more predictable
        # even for random weights (lower variance in logits paths).
        assert p_rep != p_rand  # distinct inputs measurably differ

    def test_short_sequence_and_bad_args_rejected(self, tiny_model):
        with pytest.raises(ModelError):
            sliding_window_perplexity(tiny_model, [1])
        with pytest.raises(ModelError):
            sliding_window_perplexity(tiny_model, [1, 2, 3], window=8, stride=9)
        with pytest.raises(ModelError):
            sliding_window_perplexity(tiny_model, [1, 2, 3], window=1, stride=1)


class TestAnalytical:
    def test_matches_paper_table3_within_3pct(self):
        for ds in ("wikitext2", "longbench"):
            for model, cells in paperdata.TABLE3_PERPLEXITY[ds].items():
                for prec, paper_val in cells.items():
                    if paper_val is None:
                        continue
                    ours = predicted_perplexity(model, Precision.parse(prec), ds)
                    assert ours == pytest.approx(paper_val, rel=0.03), (
                        f"{ds}/{model}/{prec}"
                    )

    def test_oom_cells_match_paper(self, orin):
        rows = {r["model"]: r for r in perplexity_table(orin)}
        for ds in ("wikitext2", "longbench"):
            for model, cells in paperdata.TABLE3_PERPLEXITY[ds].items():
                for prec, paper_val in cells.items():
                    ours = rows[model][f"{ds}_{prec}"]
                    assert (ours is None) == (paper_val is None), (
                        f"OOM mismatch {ds}/{model}/{prec}"
                    )

    def test_quantization_monotonically_degrades(self):
        for model in paperdata.MODELS:
            vals = [predicted_perplexity(model, p, "wikitext2")
                    for p in (Precision.FP16, Precision.INT8, Precision.INT4)]
            assert vals[0] <= vals[1] <= vals[2]

    def test_fits_on_device_boundaries(self, orin, a100):
        from repro.models import get_model

        assert not fits_on_device(get_model("mistral"), Precision.FP32, orin)
        assert fits_on_device(get_model("mistral"), Precision.FP16, orin)
        assert not fits_on_device(get_model("deepq"), Precision.FP16, orin)
        assert fits_on_device(get_model("deepq"), Precision.FP16, a100)
