"""Empirical validation of the quantization->perplexity model.

The analytical Table-3 pipeline assumes quantizing weights raises NLL in
proportion to a power of the matmul error.  These tests run REAL
quantized transformers through the REAL sliding-window evaluator and
check the assumption holds on live computation.
"""

import numpy as np
import pytest

from repro.models.architecture import TransformerArchitecture
from repro.nn import NumpyTransformer
from repro.perplexity import sliding_window_perplexity
from repro.quant.dtypes import Precision


@pytest.fixture(scope="module")
def setup():
    arch = TransformerArchitecture(
        name="link", hf_id="t", vocab_size=256, hidden_size=64,
        n_layers=2, n_heads=4, n_kv_heads=2, head_dim=16,
        intermediate_size=128,
    )
    rng = np.random.default_rng(42)
    # Structured token stream: a Markov-ish walk is more predictable
    # than uniform noise, giving the model headroom to be hurt.
    ids = np.cumsum(rng.integers(0, 7, size=420)) % 256
    ppl = {}
    for p in (Precision.FP32, Precision.FP16, Precision.INT8, Precision.INT4):
        model = NumpyTransformer(arch, precision=p, seed=9)
        ppl[p] = sliding_window_perplexity(model, ids, window=128, stride=64)
    return ppl


def test_fp16_is_indistinguishable_from_fp32(setup):
    """Table 3's FP32 and FP16 columns are identical; so are ours."""
    assert setup[Precision.FP16] == pytest.approx(setup[Precision.FP32], rel=5e-3)


def test_degradation_monotone_in_quantization_error(setup):
    assert setup[Precision.FP32] <= setup[Precision.INT8] * 1.001
    assert setup[Precision.INT8] < setup[Precision.INT4]


def test_int8_degradation_is_mild_int4_sharper(setup):
    """The paper: FP16->INT8 is marginal, INT8->INT4 is sharper."""
    d8 = setup[Precision.INT8] / setup[Precision.FP32] - 1.0
    d4 = setup[Precision.INT4] / setup[Precision.FP32] - 1.0
    assert d8 < 0.3
    assert d4 > 1.5 * d8
