"""KV cache manager and memory tracker."""

import pytest

from repro.errors import ConfigError
from repro.memsys import CachingAllocator, KVCache, KVCacheSpec, MemoryTracker
from repro.units import gib


@pytest.fixture
def spec():
    # Llama-3.1-8B geometry.
    return KVCacheSpec(n_layers=32, kv_heads=8, head_dim=128, dtype_bytes=2)


@pytest.fixture
def allocator():
    return CachingAllocator(gib(32))


class TestSpec:
    def test_bytes_per_token_per_layer(self, spec):
        assert spec.bytes_per_token_per_layer == 2 * 8 * 128 * 2

    def test_totals_scale_linearly(self, spec):
        one = spec.bytes_total(1, 1)
        assert spec.bytes_total(32, 96) == one * 32 * 96

    def test_validation(self):
        with pytest.raises(ConfigError):
            KVCacheSpec(n_layers=0, kv_heads=8, head_dim=128)


class TestDynamicCache:
    def test_prefill_allocates_all_layers(self, spec, allocator):
        kv = KVCache(spec, allocator, batch_size=4)
        kv.prefill(32)
        assert kv.seq_len == 32
        assert allocator.allocated_bytes >= spec.bytes_total(4, 32)
        tags = {a.tag for a in allocator.live_allocations()}
        assert "kv.k.L0" in tags and "kv.v.L31" in tags

    def test_append_grows_by_one_token(self, spec, allocator):
        kv = KVCache(spec, allocator, batch_size=4)
        kv.prefill(32)
        before = kv.live_bytes
        kv.append_token()
        assert kv.seq_len == 33
        assert kv.live_bytes - before == spec.bytes_total(4, 1)

    def test_concat_traffic_reads_old_writes_new(self, spec, allocator):
        kv = KVCache(spec, allocator, batch_size=2)
        kv.prefill(10)
        traffic = kv.concat_traffic_bytes()
        assert traffic == spec.bytes_total(2, 10) + spec.bytes_total(2, 11)

    def test_release_frees_everything(self, spec, allocator):
        kv = KVCache(spec, allocator, batch_size=2)
        kv.prefill(16)
        kv.append_token()
        kv.release()
        assert allocator.allocated_bytes == 0
        assert kv.seq_len == 0

    def test_misuse_rejected(self, spec, allocator):
        kv = KVCache(spec, allocator, batch_size=2)
        with pytest.raises(ConfigError):
            kv.append_token()  # before prefill
        kv.prefill(8)
        with pytest.raises(ConfigError):
            kv.prefill(8)  # double prefill


class TestStaticCache:
    def test_allocates_max_len_up_front(self, spec, allocator):
        kv = KVCache(spec, allocator, batch_size=2, mode="static", max_seq_len=96)
        kv.prefill(32)
        assert kv.live_bytes == spec.bytes_total(2, 96)
        used_before = allocator.allocated_bytes
        for _ in range(64):
            kv.append_token()
        assert allocator.allocated_bytes == used_before  # no churn
        assert kv.concat_traffic_bytes() == 0

    def test_overflow_rejected(self, spec, allocator):
        kv = KVCache(spec, allocator, batch_size=1, mode="static", max_seq_len=4)
        kv.prefill(4)
        with pytest.raises(ConfigError):
            kv.append_token()

    def test_static_needs_max_len(self, spec, allocator):
        with pytest.raises(ConfigError):
            KVCache(spec, allocator, batch_size=1, mode="static")


class TestDynamicVsStaticOverhead:
    def test_dynamic_reserves_more_than_static(self, spec):
        """The churn overhead the paper measures: DynamicCache holds more
        device memory than a preallocated cache of the same final size."""

        def peak(mode):
            alloc = CachingAllocator(gib(32))
            kv = KVCache(spec, alloc, batch_size=32, mode=mode, max_seq_len=512)
            kv.prefill(128)
            for _ in range(384):
                kv.append_token()
            return alloc.stats.peak_reserved

        assert peak("dynamic") > peak("static")


class TestTracker:
    def test_milestones(self, allocator):
        tr = MemoryTracker(allocator, base_system_bytes=gib(4))
        tr.mark_baseline()
        weights = allocator.alloc(gib(2))
        tr.mark_model_loaded()
        big = allocator.alloc(gib(1))
        allocator.free(big)
        tr.finish()
        assert tr.model_bytes == pytest.approx(gib(2), rel=0.02)
        assert tr.incremental_peak_bytes == pytest.approx(gib(1), rel=0.05)
        assert tr.total_peak_bytes == pytest.approx(gib(3), rel=0.05)
        allocator.free(weights)

    def test_order_enforced(self, allocator):
        tr = MemoryTracker(allocator)
        with pytest.raises(ConfigError):
            tr.mark_model_loaded()
        tr.mark_baseline()
        with pytest.raises(ConfigError):
            tr.finish()
        with pytest.raises(ConfigError):
            _ = tr.model_bytes
