"""Paged KV-cache block manager."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AllocationError, ConfigError, OutOfMemoryError
from repro.memsys import CachingAllocator, KVCacheSpec
from repro.memsys.paged import PagedKVCache
from repro.units import gib, mib


@pytest.fixture
def spec():
    return KVCacheSpec(n_layers=4, kv_heads=2, head_dim=16, dtype_bytes=2)


def make_cache(spec, pool_mib=64, block_tokens=16):
    alloc = CachingAllocator(gib(1))
    return PagedKVCache(spec, alloc, mib(pool_mib), block_tokens=block_tokens), alloc


class TestBlocks:
    def test_pool_divides_into_blocks(self, spec):
        cache, _ = make_cache(spec, pool_mib=64, block_tokens=16)
        assert cache.bytes_per_block == spec.bytes_per_token_per_layer * 4 * 16
        assert cache.stats.total_blocks == mib(64) // cache.bytes_per_block

    def test_blocks_needed_rounds_up(self, spec):
        cache, _ = make_cache(spec)
        assert cache.blocks_needed(1) == 1
        assert cache.blocks_needed(16) == 1
        assert cache.blocks_needed(17) == 2

    def test_validation(self, spec):
        alloc = CachingAllocator(gib(1))
        with pytest.raises(ConfigError):
            PagedKVCache(spec, alloc, mib(1), block_tokens=0)
        with pytest.raises(ConfigError):
            PagedKVCache(spec, alloc, 100)  # smaller than one block


class TestSequences:
    def test_admit_append_release_roundtrip(self, spec):
        cache, _ = make_cache(spec)
        cache.add_sequence(1, prompt_tokens=20)
        assert cache.seq_tokens(1) == 20
        used = cache.stats.used_blocks
        assert used == 2
        for _ in range(12):
            cache.append_token(1)
        assert cache.seq_tokens(1) == 32
        assert cache.stats.used_blocks == 2  # fit in the slack
        cache.append_token(1)
        assert cache.stats.used_blocks == 3  # crossed a block boundary
        cache.release_sequence(1)
        assert cache.stats.used_blocks == 0
        assert cache.free_blocks == cache.stats.total_blocks

    def test_no_copy_on_growth(self, spec):
        cache, _ = make_cache(spec)
        cache.add_sequence(1, 16)
        assert cache.concat_traffic_bytes() == 0

    def test_pool_exhaustion_raises_oom(self, spec):
        cache, _ = make_cache(spec, pool_mib=1, block_tokens=16)
        with pytest.raises(OutOfMemoryError):
            cache.add_sequence(1, prompt_tokens=10_000_000)

    def test_can_admit_is_accurate(self, spec):
        cache, _ = make_cache(spec, pool_mib=1)
        largest = cache.free_blocks * cache.block_tokens
        assert cache.can_admit(largest)
        assert not cache.can_admit(largest + 1)

    def test_double_admit_and_unknown_ids_rejected(self, spec):
        cache, _ = make_cache(spec)
        cache.add_sequence(1, 8)
        with pytest.raises(AllocationError):
            cache.add_sequence(1, 8)
        with pytest.raises(AllocationError):
            cache.append_token(99)
        with pytest.raises(AllocationError):
            cache.release_sequence(99)

    def test_internal_fragmentation_bounded_by_one_block_per_seq(self, spec):
        cache, _ = make_cache(spec)
        cache.add_sequence(1, 17)  # 2 blocks, 15 slots wasted
        frag = cache.internal_fragmentation
        assert 0 < frag < 0.5
        for _ in range(15):
            cache.append_token(1)
        assert cache.internal_fragmentation == pytest.approx(0.0)

    def test_release_pool_returns_reservation(self, spec):
        cache, alloc = make_cache(spec)
        before = alloc.allocated_bytes
        cache.add_sequence(1, 4)
        with pytest.raises(AllocationError):
            cache.release_pool()  # live sequences
        cache.release_sequence(1)
        cache.release_pool()
        assert alloc.allocated_bytes == before - mib(64)


@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["add", "append", "release"]),
                  st.integers(0, 5), st.integers(1, 40)),
        min_size=1, max_size=80,
    )
)
@settings(max_examples=60, deadline=None)
def test_block_accounting_invariants(ops):
    """used + free == total under any operation sequence."""
    spec = KVCacheSpec(n_layers=2, kv_heads=2, head_dim=8, dtype_bytes=2)
    alloc = CachingAllocator(gib(1))
    cache = PagedKVCache(spec, alloc, mib(4), block_tokens=8)
    live = set()
    for op, sid, tokens in ops:
        try:
            if op == "add" and sid not in live:
                cache.add_sequence(sid, tokens)
                live.add(sid)
            elif op == "append" and sid in live:
                cache.append_token(sid)
            elif op == "release" and sid in live:
                cache.release_sequence(sid)
                live.discard(sid)
        except OutOfMemoryError:
            pass  # legal under pressure
        assert cache.stats.used_blocks + cache.free_blocks == cache.stats.total_blocks
        assert cache.stats.used_blocks >= cache.blocks_needed(1) * 0 + len(live)


class TestSharedBlocks:
    """Refcounted prefix sharing + copy-on-write (radix caching support)."""

    def test_shared_admission_costs_only_the_tail(self, spec):
        cache, _ = make_cache(spec)
        cache.add_sequence(1, 48)  # 3 blocks
        used = cache.stats.used_blocks
        donated = cache.prefix_blocks(1, 2)
        cache.add_sequence(2, 48, shared_blocks=donated)
        # Only the third (private) block cost pool capacity.
        assert cache.stats.used_blocks == used + 1
        assert cache.shared_blocks == 2
        assert cache.prefix_blocks(2, 2) == donated

    def test_shared_blocks_survive_donor_release(self, spec):
        cache, _ = make_cache(spec)
        cache.add_sequence(1, 32)
        cache.add_sequence(2, 32, shared_blocks=cache.prefix_blocks(1, 2))
        cache.release_sequence(1)
        # Sequence 2 still holds both blocks; nothing returned to pool.
        assert cache.stats.used_blocks == 2
        assert cache.shared_blocks == 0
        cache.release_sequence(2)
        assert cache.stats.used_blocks == 0

    def test_append_into_shared_last_block_copies_first(self, spec):
        cache, _ = make_cache(spec)
        cache.add_sequence(1, 24)  # 2 blocks, last half-full
        cache.add_sequence(2, 24, shared_blocks=cache.prefix_blocks(1, 2))
        assert cache.stats.cow_copies == 0
        cache.append_token(2)  # writes into the shared half-full block
        assert cache.stats.cow_copies == 1
        assert cache.shared_blocks == 1  # only the first block stays shared
        # The donor's table is untouched.
        assert cache.seq_tokens(1) == 24

    def test_copy_block_noop_when_private(self, spec):
        cache, _ = make_cache(spec)
        cache.add_sequence(1, 16)
        assert cache.copy_block(1, 0) is False
        assert cache.stats.cow_copies == 0

    def test_sharing_dead_block_rejected(self, spec):
        cache, _ = make_cache(spec)
        cache.add_sequence(1, 16)
        blocks = cache.prefix_blocks(1, 1)
        cache.release_sequence(1)
        with pytest.raises(AllocationError):
            cache.add_sequence(2, 16, shared_blocks=blocks)

    def test_more_shared_than_needed_rejected(self, spec):
        cache, _ = make_cache(spec)
        cache.add_sequence(1, 48)
        with pytest.raises(AllocationError):
            cache.add_sequence(2, 16, shared_blocks=cache.prefix_blocks(1, 3))

    def test_fragmentation_clamped_under_sharing(self, spec):
        cache, _ = make_cache(spec)
        cache.add_sequence(1, 32)
        cache.add_sequence(2, 32, shared_blocks=cache.prefix_blocks(1, 2))
        # Logical bytes (2 x 32 tokens) exceed the 2 physical blocks.
        assert cache.internal_fragmentation == 0.0
