"""Property-based allocator invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memsys.allocator import CachingAllocator
from repro.units import gib


@st.composite
def alloc_scripts(draw):
    """A random sequence of alloc/free operations (sizes in bytes)."""
    n = draw(st.integers(min_value=1, max_value=60))
    ops = []
    for _ in range(n):
        if draw(st.booleans()):
            ops.append(("alloc", draw(st.integers(min_value=1, max_value=64 * 2**20))))
        else:
            ops.append(("free", draw(st.integers(min_value=0, max_value=100))))
    return ops


@given(script=alloc_scripts())
@settings(max_examples=80, deadline=None)
def test_accounting_invariants_hold_under_any_script(script):
    a = CachingAllocator(gib(8))
    live = []
    expected_live = 0
    for op, arg in script:
        if op == "alloc":
            h = a.alloc(arg)
            live.append(h)
            expected_live += h.rounded
        elif live:
            h = live.pop(arg % len(live))
            expected_live -= h.rounded
            a.free(h)
        # Invariants after every operation:
        assert a.allocated_bytes == expected_live
        assert a.reserved_bytes >= a.allocated_bytes
        assert a.stats.peak_allocated >= a.allocated_bytes
        assert a.stats.peak_reserved >= a.reserved_bytes


@given(script=alloc_scripts())
@settings(max_examples=40, deadline=None)
def test_full_free_returns_to_zero_allocated(script):
    a = CachingAllocator(gib(8))
    live = []
    for op, arg in script:
        if op == "alloc":
            live.append(a.alloc(arg))
        elif live:
            a.free(live.pop(arg % len(live)))
    for h in live:
        a.free(h)
    assert a.allocated_bytes == 0


@given(
    sizes=st.lists(st.integers(min_value=1, max_value=8 * 2**20),
                   min_size=1, max_size=30)
)
@settings(max_examples=50, deadline=None)
def test_segments_never_overlap(sizes):
    """Blocks within each segment tile it exactly: offsets are contiguous
    and sizes sum to the segment size."""
    a = CachingAllocator(gib(8))
    for s in sizes:
        a.alloc(s)
    for seg in a._segments:
        offset = 0
        for block in seg.blocks:
            assert block.offset == offset
            offset += block.size
        assert offset == seg.size
