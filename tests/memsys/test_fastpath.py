"""Differential tests: AllocatorMirror vs the real CachingAllocator.

The fast-forward trajectory machinery is only sound if the mirror is a
*bit-exact* replay of the allocator — same best-fit choice, same
rounding, same coalescing, same GC and OOM-retry decisions, in the same
order.  These tests drive both implementations with identical operation
streams (random fuzz plus the executor's structured batch stream) and
compare full state fingerprints after every step.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

import pytest

from repro.errors import OutOfMemoryError
from repro.memsys.allocator import CachingAllocator
from repro.memsys.fastpath import (
    TRAJECTORY_CACHE,
    AllocatorMirror,
    StreamSpec,
    TrajectoryCache,
    apply_delta,
    simulate_stream,
    state_fingerprint,
)

KiB = 1024
MiB = 1024 * 1024


def _warmed_allocator(**kwargs) -> CachingAllocator:
    """An allocator with live 'weights' plus cached free segments, so the
    mirror starts from a non-trivial layout."""
    alloc = CachingAllocator(**kwargs)
    alloc.alloc(8 * MiB, tag="weights")
    scratch = [alloc.alloc(n) for n in (3 * MiB, 700 * KiB, 64 * KiB, 5 * MiB)]
    for h in scratch[::2]:
        alloc.free(h)
    return alloc


GC_VARIANTS = [
    pytest.param(dict(gc_threshold=0.5), id="gc-frac"),
    pytest.param(dict(gc_threshold=None), id="gc-off"),
    pytest.param(dict(gc_threshold=None, dead_cap_bytes=4 * MiB),
                 id="dead-cap"),
    pytest.param(dict(gc_threshold=0.9, dead_cap_bytes=16 * MiB),
                 id="both-knobs"),
]


@pytest.mark.parametrize("knobs", GC_VARIANTS)
@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
def test_mirror_matches_real_allocator_step_by_step(seed, knobs):
    rng = random.Random(seed)
    real = _warmed_allocator(capacity_bytes=48 * MiB, **knobs)
    mirror = AllocatorMirror(real)
    assert mirror.fingerprint() == state_fingerprint(real)

    live: List[Tuple[object, tuple]] = []  # (real handle, mirror handle)
    for _ in range(300):
        op = rng.random()
        if op < 0.55 or not live:
            if rng.random() < 0.5:
                size = rng.randint(1, MiB - 1)          # small pool
            else:
                size = rng.randint(MiB, 6 * MiB)        # large pool
            r_exc = m_exc = None
            try:
                rh = real.alloc(size)
            except OutOfMemoryError as e:
                r_exc = e
            try:
                mh = mirror.alloc(size)
            except OutOfMemoryError as e:
                m_exc = e
            assert (r_exc is None) == (m_exc is None), \
                f"OOM divergence on alloc({size})"
            if r_exc is None:
                live.append((rh, mh))
            else:
                assert r_exc.requested_bytes == m_exc.requested_bytes
                assert r_exc.available_bytes == m_exc.available_bytes
        elif op < 0.80:
            rh, mh = live.pop(rng.randrange(len(live)))
            real.free(rh)
            mirror.free(mh)
        else:
            i = rng.randrange(len(live))
            rh, mh = live[i]
            grown = rh.requested + rng.randint(1, 512 * KiB)
            r_exc = m_exc = None
            try:
                rh2 = real.realloc_grow(rh, grown)
            except OutOfMemoryError as e:
                r_exc = e
            try:
                mh2 = mirror.realloc_grow(mh, grown)
            except OutOfMemoryError as e:
                m_exc = e
            assert (r_exc is None) == (m_exc is None)
            if r_exc is None:
                live[i] = (rh2, mh2)
        assert mirror.fingerprint() == state_fingerprint(real)

    # Counters the delta folds back must match the real deltas too.
    st = real.stats
    assert mirror.n_oom_retries == st.n_oom_retries
    assert mirror.reserved == st.reserved
    assert mirror.allocated == st.allocated
    assert mirror.peak_allocated == st.peak_allocated
    assert mirror.peak_reserved == st.peak_reserved


def _replay_stream_real(alloc: CachingAllocator,
                        stream: StreamSpec) -> Optional[Tuple[str, int]]:
    """Execute a StreamSpec with real allocator calls, in the executor's
    exact order (including OOM partial states and finally cleanup)."""
    oom: Optional[Tuple[str, int]] = None
    ws = None
    kv = []
    eager = None
    try:
        ws = alloc.alloc(stream.workspace_bytes)
        for _ in range(stream.n_kv_tensors):
            kv.append(alloc.alloc(stream.kv_prefill_bytes))
        if stream.eager_prefill_bytes is not None:
            eager = alloc.alloc(stream.eager_prefill_bytes)
    except OutOfMemoryError:
        oom = ("setup", 0)
    if oom is None:
        for j in range(stream.n_tokens):
            try:
                if stream.kv_step_bytes:
                    per = stream.kv_step_bytes[j]
                    for i in range(stream.n_kv_tensors):
                        kv[i] = alloc.realloc_grow(kv[i], per)
                if stream.eager_step_bytes:
                    buf, eager = eager, None
                    alloc.free(buf)
                    eager = alloc.alloc(stream.eager_step_bytes[j])
            except OutOfMemoryError:
                oom = ("decode", j)
                break
    if eager is not None:
        alloc.free(eager)
    for h in kv:
        alloc.free(h)
    if ws is not None:
        alloc.free(ws)
    return oom


def _batch_stream(n_tokens=12, eager=True) -> StreamSpec:
    base = 256 * KiB
    return StreamSpec(
        workspace_bytes=2 * MiB,
        n_kv_tensors=4,
        kv_prefill_bytes=base,
        kv_step_bytes=tuple(base + (j + 1) * 32 * KiB
                            for j in range(n_tokens)),
        eager_prefill_bytes=MiB if eager else None,
        eager_step_bytes=(tuple(MiB + (j + 1) * 128 * KiB
                                for j in range(n_tokens))
                          if eager else ()),
        n_tokens=n_tokens,
    )


@pytest.mark.parametrize("knobs", GC_VARIANTS)
@pytest.mark.parametrize("eager", [True, False], ids=["eager", "no-eager"])
def test_apply_delta_reproduces_real_end_state(knobs, eager):
    stream = _batch_stream(eager=eager)
    real = _warmed_allocator(capacity_bytes=64 * MiB, **knobs)
    fast = _warmed_allocator(capacity_bytes=64 * MiB, **knobs)
    assert state_fingerprint(real) == state_fingerprint(fast)

    oom = _replay_stream_real(real, stream)
    assert oom is None

    cache = TrajectoryCache()
    delta = cache.delta_for(fast, stream)
    assert delta.oom is None
    apply_delta(fast, delta)

    assert state_fingerprint(fast) == state_fingerprint(real)
    # Counter folding must match the real run too (peaks, op counts).
    for attr in ("n_allocs", "n_segment_allocs", "n_reclaims",
                 "n_oom_retries", "peak_allocated", "peak_reserved",
                 "reserved"):
        assert getattr(fast.stats, attr) == getattr(real.stats, attr), attr


def test_apply_delta_reproduces_oom_end_state():
    # Capacity sized so decode's growing eager buffers blow the budget
    # mid-stream — both paths must OOM at the same token and leave
    # identical end states after cleanup.
    stream = StreamSpec(
        workspace_bytes=2 * MiB,
        n_kv_tensors=4,
        kv_prefill_bytes=256 * KiB,
        kv_step_bytes=tuple(256 * KiB + (j + 1) * 64 * KiB
                            for j in range(40)),
        eager_prefill_bytes=MiB,
        eager_step_bytes=tuple(MiB * (j + 2) for j in range(40)),
        n_tokens=40,
    )
    knobs = dict(capacity_bytes=24 * MiB, gc_threshold=0.5)
    real = CachingAllocator(**knobs)
    fast = CachingAllocator(**knobs)

    oom = _replay_stream_real(real, stream)
    assert oom is not None and oom[0] == "decode"

    delta = TrajectoryCache().delta_for(fast, stream)
    assert delta.oom == oom
    apply_delta(fast, delta)
    assert state_fingerprint(fast) == state_fingerprint(real)
    assert fast.stats.n_oom_retries == real.stats.n_oom_retries


def test_trajectory_cache_hits_on_repeat_state():
    stream = _batch_stream()
    cache = TrajectoryCache()
    a = _warmed_allocator(capacity_bytes=64 * MiB)
    d1 = cache.delta_for(a, stream)
    assert (cache.hits, cache.misses) == (0, 1)
    # Identical state + identical stream -> pure cache hit, same delta.
    b = _warmed_allocator(capacity_bytes=64 * MiB)
    d2 = cache.delta_for(b, stream)
    assert (cache.hits, cache.misses) == (1, 1)
    assert d1 is d2
    # A different state must miss (keys include the full fingerprint).
    c = _warmed_allocator(capacity_bytes=64 * MiB)
    c.alloc(MiB, tag="extra")
    cache.delta_for(c, stream)
    assert (cache.hits, cache.misses) == (1, 2)
    assert len(cache) == 2


def test_trajectory_cache_lru_bound_and_clear():
    cache = TrajectoryCache(max_entries=3)
    a = CachingAllocator(64 * MiB)
    for n in range(1, 6):
        cache.delta_for(a, _batch_stream(n_tokens=n))
    assert len(cache) == 3
    cache.clear()
    assert len(cache) == 0 and cache.hits == 0 and cache.misses == 0


def test_process_global_cache_exists():
    assert isinstance(TRAJECTORY_CACHE, TrajectoryCache)
