"""Caching allocator: rounding, pooling, reuse, reclaim, OOM."""

import pytest

from repro.errors import AllocationError, OutOfMemoryError
from repro.memsys.allocator import (
    LARGE_SEGMENT_MIN,
    ROUND_SMALL,
    SMALL_SEGMENT,
    CachingAllocator,
)
from repro.units import gib, mib


def test_requests_round_to_512():
    a = CachingAllocator(gib(1))
    h = a.alloc(100)
    assert h.rounded == ROUND_SMALL
    h2 = a.alloc(513)
    assert h2.rounded == 1024


def test_small_allocations_pool_into_2mib_segments():
    a = CachingAllocator(gib(1))
    for _ in range(8):
        a.alloc(1024)
    assert a.reserved_bytes == SMALL_SEGMENT  # all share one segment


def test_large_allocation_gets_20mib_segment_min():
    a = CachingAllocator(gib(1))
    a.alloc(mib(5))
    assert a.reserved_bytes == LARGE_SEGMENT_MIN


def test_free_and_reuse_same_size():
    # gc disabled: freeing must cache the block, not return the segment.
    a = CachingAllocator(gib(1), gc_threshold=None)
    h = a.alloc(mib(5))
    a.free(h)
    a.alloc(mib(5))
    assert a.stats.n_segment_allocs == 1  # reused cached block


def test_gc_returns_fully_freed_segments():
    a = CachingAllocator(gib(1), gc_threshold=0.5)
    h = a.alloc(mib(5))
    a.free(h)
    assert a.reserved_bytes == 0
    assert a.stats.n_reclaims == 1


def test_growing_stream_reuses_coalesced_space_within_pool():
    """A DynamicCache-style growing stream under 20 MiB stays in a
    bounded number of segments thanks to coalescing."""
    a = CachingAllocator(gib(4), gc_threshold=None)
    h = a.alloc(mib(5))
    for step in range(1, 120):
        h = a.realloc_grow(h, mib(5) + step * 65536)
    # Live is ~12.5 MiB; reserved must stay far below sum-of-all-steps.
    assert a.reserved_bytes < mib(80)


def test_oversize_stream_accumulates_then_reclaims_under_pressure():
    a = CachingAllocator(mib(200), gc_threshold=None)
    h = a.alloc(mib(30))
    for step in range(1, 31):
        # Each step crosses a 2 MiB segment-rounding boundary, so no
        # cached block ever fits and dead segments pile up until the
        # allocator hits capacity and reclaims them.
        h = a.realloc_grow(h, mib(30) + step * mib(2))
    assert a.allocated_bytes < mib(95)
    assert a.stats.n_oom_retries >= 1
    assert a.stats.n_reclaims >= 1


def test_gc_threshold_bounds_cached_fraction():
    a = CachingAllocator(gib(8), gc_threshold=0.5)
    h = a.alloc(mib(30))
    for step in range(1, 60):
        h = a.realloc_grow(h, mib(30) + step * mib(1))
    assert a.reserved_bytes <= 2.3 * a.allocated_bytes + SMALL_SEGMENT


def test_oom_raises_with_context():
    a = CachingAllocator(mib(64))
    a.alloc(mib(40))
    with pytest.raises(OutOfMemoryError) as ei:
        a.alloc(mib(40))
    assert ei.value.requested_bytes >= mib(40)
    assert ei.value.available_bytes <= mib(24)


def test_oom_after_reclaim_retry():
    a = CachingAllocator(mib(64), gc_threshold=None)
    h = a.alloc(mib(30))
    a.free(h)  # cached, not returned
    a.alloc(mib(50))  # must reclaim the free segment to fit
    assert a.stats.n_reclaims >= 1


def test_double_free_rejected():
    a = CachingAllocator(gib(1))
    h = a.alloc(4096)
    a.free(h)
    with pytest.raises(AllocationError):
        a.free(h)


def test_zero_and_negative_sizes_rejected():
    a = CachingAllocator(gib(1))
    with pytest.raises(AllocationError):
        a.alloc(0)
    with pytest.raises(AllocationError):
        a.alloc(-5)


def test_peak_tracking_and_reset():
    a = CachingAllocator(gib(1))
    h = a.alloc(mib(100))
    a.free(h)
    assert a.stats.peak_allocated >= mib(100)
    a.reset_peaks()
    assert a.stats.peak_allocated == a.allocated_bytes == 0


def test_live_allocations_listing():
    a = CachingAllocator(gib(1))
    h1 = a.alloc(1024, tag="x")
    a.alloc(2048, tag="y")
    assert {al.tag for al in a.live_allocations()} == {"x", "y"}
    a.free(h1)
    assert {al.tag for al in a.live_allocations()} == {"y"}
