"""Command-line interface."""

import pytest

from repro.cli import main


def test_footprint_prints_table1(capsys):
    assert main(["footprint"]) == 0
    out = capsys.readouterr().out
    assert "MS-Phi2" in out and "Deepseek-Qwen" in out
    assert "47.1" in out  # Mistral FP16


def test_models_listing(capsys):
    assert main(["models"]) == 0
    out = capsys.readouterr().out
    assert "meta-llama/Llama-3.1-8B" in out


def test_devices_listing(capsys):
    assert main(["devices"]) == 0
    out = capsys.readouterr().out
    assert "jetson-orin-agx-64gb" in out and "a100-sxm-80gb" in out


def test_run_single_config(capsys):
    rc = main(["run", "--model", "phi2", "--batch-size", "2",
               "--input-tokens", "4", "--output-tokens", "8", "--runs", "1"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "MS-Phi2" in out and "fp16" in out


def test_run_oom_exit_code(capsys):
    rc = main(["run", "--model", "deepq", "--precision", "fp16",
               "--runs", "1", "--batch-size", "1",
               "--input-tokens", "2", "--output-tokens", "2"])
    assert rc == 2  # OOM signalled distinctly


def test_run_bad_precision_is_clean_error(capsys):
    rc = main(["run", "--precision", "fp8"])
    assert rc == 1
    assert "unknown precision" in capsys.readouterr().err


def test_sweep_quant_with_csv(tmp_path, capsys):
    csv = tmp_path / "quant.csv"
    rc = main(["sweep", "quant", "--model", "phi2", "--runs", "1",
               "--csv", str(csv)])
    assert rc == 0
    assert csv.exists()
    text = csv.read_text()
    assert "fp32" in text and "int4" in text


def test_perplexity_table(capsys):
    assert main(["perplexity"]) == 0
    out = capsys.readouterr().out
    assert "OOM" in out  # Deepseek fp32/fp16 cells


def test_study_smoke_with_cache(tmp_path, capsys):
    args = ["study", "--models", "MS-Phi2", "--runs", "1",
            "--no-power-energy", "--quiet",
            "--cache", "--cache-dir", str(tmp_path / "cache")]
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out and "batch-size sweep — MS-Phi2" in out
    assert "cache:" in out
    # Second invocation replays everything from the cache.
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "0 misses" in out


def test_study_rejects_unknown_model(capsys):
    assert main(["study", "--models", "not-a-model", "--runs", "1",
                 "--quiet"]) == 1
    assert "error:" in capsys.readouterr().err


CHAOS_ARGS = ["chaos", "--seed", "5", "--requests", "16", "--horizon", "20",
              "--crash-rate", "2.0", "--crash-downtime", "5",
              "--rate", "3.0", "--show-trace"]


def test_chaos_bit_reproducible(capsys):
    assert main(CHAOS_ARGS) == 0
    first = capsys.readouterr().out
    assert main(CHAOS_ARGS) == 0
    second = capsys.readouterr().out
    assert first == second  # byte-identical, the acceptance bar
    assert "availability" in first and "cache_key=" in first
    assert "crash.begin" in first


def test_chaos_writes_csv(tmp_path, capsys):
    csv = tmp_path / "chaos.csv"
    assert main(["chaos", "--seed", "1", "--requests", "8", "--horizon", "10",
                 "--crash-rate", "1.0", "--csv", str(csv)]) == 0
    body = csv.read_text()
    assert "availability" in body and "retry_amp" in body


CLUSTER_OBS_ARGS = ["cluster", "--requests", "16", "--rate", "3.0",
                    "--seed", "7", "--output-tokens", "16"]


def test_cluster_trace_out_is_byte_identical(tmp_path, capsys):
    """The PR's acceptance bar: two same-seed runs, identical trace bytes."""
    t1, t2 = tmp_path / "t1.json", tmp_path / "t2.json"
    assert main(CLUSTER_OBS_ARGS + ["--trace-out", str(t1)]) == 0
    assert main(CLUSTER_OBS_ARGS + ["--trace-out", str(t2)]) == 0
    capsys.readouterr()
    assert t1.read_bytes() == t2.read_bytes()
    import json
    trace = json.loads(t1.read_text())
    assert any(e["ph"] == "X" and e["name"] == "request"
               for e in trace["traceEvents"])


def test_cluster_obs_prints_breakdown_and_writes_metrics(tmp_path, capsys):
    prom = tmp_path / "m.prom"
    assert main(CLUSTER_OBS_ARGS + ["--metrics-out", str(prom)]) == 0
    out = capsys.readouterr().out
    assert "phase breakdown" in out
    text = prom.read_text()
    assert "# TYPE requests_completed_total counter" in text
    assert "ttft_s_bucket" in text


def test_run_trace_out_covers_engine_phases(tmp_path, capsys):
    trace = tmp_path / "run.json"
    assert main(["run", "--model", "phi2", "--batch-size", "2",
                 "--input-tokens", "4", "--output-tokens", "8", "--runs", "1",
                 "--trace-out", str(trace)]) == 0
    capsys.readouterr()
    import json
    names = {e["name"] for e in json.loads(trace.read_text())["traceEvents"]}
    assert {"prefill", "decode", "batch"} <= names


def test_obs_flags_off_leave_no_files(tmp_path, capsys):
    assert main(CLUSTER_OBS_ARGS) == 0
    assert "phase breakdown" not in capsys.readouterr().out
    assert list(tmp_path.iterdir()) == []


def test_backends_listing(capsys):
    assert main(["backends"]) == 0
    out = capsys.readouterr().out
    for name in ("hf-transformers", "gguf", "paged"):
        assert name in out


def test_sweep_runtime_prints_comparison_with_cache(tmp_path, capsys):
    args = ["sweep", "runtime", "--model", "phi2", "--runs", "1",
            "--cache", "--cache-dir", str(tmp_path / "cache")]
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "runtime comparison" in out
    assert "speedup_x" in out and "gguf" in out and "paged" in out
    # Replay: every cell comes back from the cache, same table.
    assert main(args) == 0
    assert "0 misses" in capsys.readouterr().out


def test_run_accepts_runtime(capsys):
    rc = main(["run", "--model", "phi2", "--runtime", "gguf",
               "--batch-size", "1", "--input-tokens", "4",
               "--output-tokens", "8", "--runs", "1"])
    assert rc == 0
    assert "gguf" in capsys.readouterr().out


def test_kvtier_sweep_bit_reproducible(tmp_path, capsys):
    args = ["kvtier", "--requests", "12", "--policies", "sacrifice,swap-lru",
            "--triggers", "1.0", "--share-ratios", "0.5"]
    assert main(args + ["--csv", str(tmp_path / "a.csv")]) == 0
    first = capsys.readouterr().out
    assert main(args + ["--csv", str(tmp_path / "b.csv")]) == 0
    second = capsys.readouterr().out
    assert "swap-lru@1" in first and "cache_key=" in first
    assert first.replace("a.csv", "b.csv") == second
    assert (tmp_path / "a.csv").read_bytes() == (tmp_path / "b.csv").read_bytes()


def test_kvtier_rejects_unknown_policy(capsys):
    assert main(["kvtier", "--policies", "bogus"]) == 1
    assert "unknown KV lifecycle policy" in capsys.readouterr().err


def test_cluster_accepts_kv_policy(capsys):
    rc = main(["cluster", "--devices", "jetson-orin-agx-64gb",
               "--requests", "8", "--kv-policy", "swap-lru",
               "--kv-trigger", "0.9"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "swap_outs" in out and "prefix_hit_rate" in out


def test_chaos_accepts_kv_policy(capsys):
    rc = main(["chaos", "--devices", "jetson-orin-agx-64gb", "--requests",
               "8", "--kv-policy", "swap-lifo", "--crash-rate", "0.5"])
    assert rc == 0
    assert "cache_key=" in capsys.readouterr().out


def test_sustain_sweep_bit_reproducible(tmp_path, capsys):
    args = ["sustain", "--requests", "10", "--scenarios", "two-region",
            "--cascades", "off"]
    assert main(args + ["--csv", str(tmp_path / "a.csv")]) == 0
    first = capsys.readouterr().out
    assert main(args + ["--csv", str(tmp_path / "b.csv")]) == 0
    second = capsys.readouterr().out
    assert "carbon-aware" in first and "cache_key=" in first
    assert first.replace("a.csv", "b.csv") == second
    assert (tmp_path / "a.csv").read_bytes() == (tmp_path / "b.csv").read_bytes()


def test_sustain_rejects_unknown_scenario(capsys):
    assert main(["sustain", "--scenarios", "mars"]) == 1
    assert "scenario" in capsys.readouterr().err


def test_plan_carbon_flag_adds_column(capsys):
    assert main(["plan", "--carbon-gco2", "400"]) == 0
    out = capsys.readouterr().out
    assert "g_per_token" in out


def test_fairness_accepts_power_modes(capsys):
    rc = main(["fairness", "--schedulers", "fcfs,vtc", "--mixes", "flood",
               "--power-modes", "MAXN,B", "--interactions", "4"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "power_mode" in out and "cache_key=" in out
