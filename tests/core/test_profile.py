"""The `repro profile` entry point and its deterministic report."""

from __future__ import annotations

from repro.cli import main
from repro.core.profile import (
    ProfileReport,
    ProfileRow,
    default_profile_specs,
    profile_specs,
)


def test_profile_specs_produces_sorted_repo_relative_report():
    specs = default_profile_specs(["MS-Phi2"], n_runs=1)
    report = profile_specs(specs, top=15)
    assert isinstance(report, ProfileReport)
    assert report.n_specs == len(specs) == 2
    assert 0 < len(report.rows) <= 15
    assert report.total_calls > 0 and report.total_seconds > 0

    # Rows sorted by cumulative time, descending; ties broken by name so
    # the ordering is stable across runs of the same build.
    cums = [r.cumtime for r in report.rows]
    assert cums == sorted(cums, reverse=True)
    # Repo files print relative to src/ — no machine-specific prefixes.
    repro_rows = [r for r in report.rows if r.where.startswith("repro/")]
    assert repro_rows, "expected repro-relative rows near the top"
    assert not any(r.where.startswith("/") for r in report.rows)
    assert any("run_experiment" in r.where for r in report.rows)

    text = report.format()
    assert "cProfile-instrumented" in text.splitlines()[0]
    assert len(text.splitlines()) == 2 + len(report.rows)


def test_report_rows_have_structured_view():
    row = ProfileRow(ncalls=3, tottime=0.5, cumtime=1.25,
                     where="repro/x.py:1(f)")
    assert row.as_row() == {"ncalls": 3, "tottime_s": 0.5,
                            "cumtime_s": 1.25, "function": "repro/x.py:1(f)"}


def test_default_profile_specs_default_model():
    specs = default_profile_specs(None, n_runs=2)
    assert [s.model for s in specs] == ["llama", "llama"]
    assert all(s.n_runs == 2 for s in specs)


def test_profile_cli_smoke(tmp_path, capsys):
    out_file = tmp_path / "profile.txt"
    rc = main(["profile", "--models", "MS-Phi2", "--runs", "1",
               "--top", "5", "--out", str(out_file)])
    assert rc == 0
    printed = capsys.readouterr().out
    assert "profile: 2 spec(s)" in printed
    assert out_file.exists()
    assert "cumtime" in out_file.read_text()
