"""The full-paper study orchestrator (small configuration)."""

import pytest

from repro.core.study import StudySpec, run_full_study
from repro.quant.dtypes import Precision


@pytest.fixture(scope="module")
def study():
    # One small model, one run per config: fast but exercises every path.
    return run_full_study(StudySpec.of(models=["MS-Phi2"], n_runs=1,
                                       include_power_energy=False))


def test_analytic_tables_present(study):
    assert len(study.table1_footprints) == 1
    assert study.table1_footprints[0]["model"] == "MS-Phi2"
    assert len(study.table3_perplexity) == 4  # all paper models


def test_batch_sweeps_cover_both_workloads(study):
    assert set(study.batch_sweeps["MS-Phi2"]) == {"wikitext2", "longbench"}
    runs = study.batch_sweeps["MS-Phi2"]["wikitext2"]
    assert [r.batch_size for r in runs] == [1, 2, 4, 8, 16, 32, 64, 128]


def test_seqlen_sweeps_contain_oom_rows(study):
    runs = study.seqlen_sweeps["MS-Phi2"]["longbench"]
    assert any(r.oom for r in runs)
    assert any(not r.oom for r in runs)


def test_quant_sweep_covers_all_precisions(study):
    runs = study.quant_sweeps["MS-Phi2"]
    assert {r.precision for r in runs} == set(Precision)


def test_power_mode_sweep_covers_table2(study):
    runs = study.power_mode_sweeps["MS-Phi2"]
    assert [r.power_mode for r in runs] == [
        "MAXN", "A", "B", "C", "D", "E", "F", "G", "H"
    ]


def test_power_energy_skippable(study):
    assert study.power_energy_sweeps == {}
