"""Experiment specs and the four sweeps (cheap configurations)."""

import pytest

from repro.core import ExperimentSpec, run_experiment
from repro.core.experiment import default_precision_for
from repro.core.sweeps import (
    batch_size_sweep,
    power_mode_sweep,
    quantization_sweep,
    seq_len_sweep,
)
from repro.engine.request import GenerationSpec
from repro.errors import ExperimentError
from repro.quant.dtypes import Precision


class TestSpec:
    def test_defaults_match_paper(self):
        spec = ExperimentSpec(model="llama")
        assert spec.batch_size == 32
        assert spec.gen.total_tokens == 96
        assert spec.power_mode == "MAXN"
        assert spec.n_runs == 5 and spec.warmup == 1

    def test_default_precisions(self):
        assert default_precision_for("llama") is Precision.FP16
        assert default_precision_for("deepq") is Precision.INT8

    def test_validation(self):
        with pytest.raises(ExperimentError):
            ExperimentSpec(model="llama", kv_mode="paged")
        with pytest.raises(ExperimentError):
            ExperimentSpec(model="llama", workload="c4")


class TestRunExperiment:
    def test_basic_run(self):
        spec = ExperimentSpec(model="phi2", batch_size=2,
                              gen=GenerationSpec(4, 8), n_runs=2)
        res = run_experiment(spec)
        assert not res.oom
        assert res.mean_latency_s > 0
        assert res.model == "MS-Phi2"

    def test_load_oom_reported_not_raised(self):
        spec = ExperimentSpec(model="deepq", precision=Precision.FP16,
                              batch_size=1, gen=GenerationSpec(2, 2), n_runs=1)
        res = run_experiment(spec)
        assert res.oom

    def test_unknown_power_mode_raises(self):
        from repro.errors import PowerModeError

        with pytest.raises(PowerModeError):
            run_experiment(ExperimentSpec(model="phi2", power_mode="TURBO"))

    def test_none_power_mode_runs_at_native_operating_point(self):
        """power_mode=None skips mode application: boards whose clock
        ranges cannot take the AGX Table-2 values still run, at their
        own maximum (real nvpmodel MAXN is per-device)."""
        spec = ExperimentSpec(model="phi2", device="jetson-orin-nx-16gb",
                              batch_size=1, gen=GenerationSpec(4, 8),
                              n_runs=1, power_mode=None)
        res = run_experiment(spec)
        assert not res.oom
        assert res.power_mode == "MAXN"  # native max, nvpmodel's label


GEN = GenerationSpec(4, 8)


class TestSweeps:
    def test_batch_size_sweep_throughput_monotone(self):
        spec = ExperimentSpec.for_model("phi2", n_runs=1)
        runs = batch_size_sweep(spec, batch_sizes=(1, 4, 16))
        tps = [r.throughput_tok_s for r in runs]
        assert tps == sorted(tps)
        lats = [r.mean_latency_s for r in runs]
        assert lats == sorted(lats)

    def test_seq_len_sweep_throughput_falls(self):
        spec = ExperimentSpec.for_model("llama", workload="longbench", n_runs=1)
        runs = seq_len_sweep(spec, seq_lengths=(128, 256))
        assert runs[0].throughput_tok_s > runs[1].throughput_tok_s

    def test_quantization_sweep_covers_all_precisions(self):
        spec = ExperimentSpec.for_model("phi2", batch_size=2, n_runs=1, gen=GEN)
        runs = quantization_sweep(spec)
        assert [r.precision for r in runs] == [
            Precision.FP32, Precision.FP16, Precision.INT8, Precision.INT4
        ]

    def test_power_mode_sweep_order_and_names(self):
        spec = ExperimentSpec.for_model("phi2", n_runs=1)
        runs = power_mode_sweep(spec, modes=("MAXN", "H"))
        assert [r.power_mode for r in runs] == ["MAXN", "H"]
        assert runs[1].mean_latency_s > runs[0].mean_latency_s

    def test_seq_len_sweep_rejects_unknown_length(self):
        spec = ExperimentSpec.for_model("phi2", workload="longbench", n_runs=1)
        with pytest.raises(ExperimentError):
            seq_len_sweep(spec, seq_lengths=(100,))

    def test_sweeps_reject_spec_plus_legacy_kwargs(self):
        spec = ExperimentSpec.for_model("phi2", n_runs=1)
        with pytest.raises(ExperimentError):
            batch_size_sweep(spec, n_runs=2)
