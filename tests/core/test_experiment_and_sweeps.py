"""Experiment specs and the four sweeps (cheap configurations)."""

import pytest

from repro.core import ExperimentSpec, run_experiment
from repro.core.experiment import default_precision_for
from repro.core.sweeps import (
    batch_size_sweep,
    power_mode_sweep,
    quantization_sweep,
    seq_len_sweep,
)
from repro.engine.request import GenerationSpec
from repro.errors import ExperimentError
from repro.quant.dtypes import Precision


class TestSpec:
    def test_defaults_match_paper(self):
        spec = ExperimentSpec(model="llama")
        assert spec.batch_size == 32
        assert spec.gen.total_tokens == 96
        assert spec.power_mode == "MAXN"
        assert spec.n_runs == 5 and spec.warmup == 1

    def test_default_precisions(self):
        assert default_precision_for("llama") is Precision.FP16
        assert default_precision_for("deepq") is Precision.INT8

    def test_validation(self):
        with pytest.raises(ExperimentError):
            ExperimentSpec(model="llama", kv_mode="paged")
        with pytest.raises(ExperimentError):
            ExperimentSpec(model="llama", workload="c4")


class TestRunExperiment:
    def test_basic_run(self):
        spec = ExperimentSpec(model="phi2", batch_size=2,
                              gen=GenerationSpec(4, 8), n_runs=2)
        res = run_experiment(spec)
        assert not res.oom
        assert res.mean_latency_s > 0
        assert res.model == "MS-Phi2"

    def test_load_oom_reported_not_raised(self):
        spec = ExperimentSpec(model="deepq", precision=Precision.FP16,
                              batch_size=1, gen=GenerationSpec(2, 2), n_runs=1)
        res = run_experiment(spec)
        assert res.oom

    def test_unknown_power_mode_raises(self):
        from repro.errors import PowerModeError

        with pytest.raises(PowerModeError):
            run_experiment(ExperimentSpec(model="phi2", power_mode="TURBO"))


GEN = GenerationSpec(4, 8)


class TestSweeps:
    def test_batch_size_sweep_throughput_monotone(self):
        runs = batch_size_sweep("phi2", batch_sizes=(1, 4, 16), n_runs=1)
        tps = [r.throughput_tok_s for r in runs]
        assert tps == sorted(tps)
        lats = [r.mean_latency_s for r in runs]
        assert lats == sorted(lats)

    def test_seq_len_sweep_throughput_falls(self):
        runs = seq_len_sweep("llama", seq_lengths=(128, 256), n_runs=1)
        assert runs[0].throughput_tok_s > runs[1].throughput_tok_s

    def test_quantization_sweep_covers_all_precisions(self):
        runs = quantization_sweep("phi2", batch_size=2, n_runs=1,
                                  gen=GEN)
        assert [r.precision for r in runs] == [
            Precision.FP32, Precision.FP16, Precision.INT8, Precision.INT4
        ]

    def test_power_mode_sweep_order_and_names(self):
        runs = power_mode_sweep("phi2", modes=("MAXN", "H"), n_runs=1)
        assert [r.power_mode for r in runs] == ["MAXN", "H"]
        assert runs[1].mean_latency_s > runs[0].mean_latency_s

    def test_seq_len_sweep_rejects_unknown_length(self):
        with pytest.raises(ExperimentError):
            seq_len_sweep("phi2", seq_lengths=(100,), n_runs=1)
