"""The spec-first API redesign's backwards-compatibility shims.

Legacy model-name sweep calls and ``run_full_study`` keyword calls must
keep producing the same grids they always did — but under a
``DeprecationWarning`` — while mixing the two styles is refused.  CI
runs the suite with ``-W error::DeprecationWarning``, so every legacy
call in here must be wrapped in ``pytest.warns``.
"""

import pytest

from repro.core import ExperimentSpec, StudySpec, default_precision_for
from repro.core.study import run_full_study
from repro.core.sweeps import (
    DEFAULT_GEN,
    batch_quant_power_sweep_specs,
    batch_size_sweep_specs,
    power_mode_sweep_specs,
    quantization_sweep_specs,
    seq_len_sweep_specs,
)
from repro.errors import ExperimentError
from repro.obs import Observer
from repro.quant.dtypes import Precision
from repro.sim.tracing import Trace


class TestForModel:
    def test_fills_per_model_default_precision(self):
        spec = ExperimentSpec.for_model("deepq")
        assert spec.precision is default_precision_for("deepq")
        assert spec.gen == DEFAULT_GEN

    def test_overrides_pass_through(self):
        spec = ExperimentSpec.for_model("llama", batch_size=4, n_runs=2,
                                        precision=Precision.INT8)
        assert (spec.batch_size, spec.n_runs) == (4, 2)
        assert spec.precision is Precision.INT8


class TestLegacySweepCalls:
    def test_model_name_warns_and_builds_same_grid(self):
        modern = batch_size_sweep_specs(
            ExperimentSpec.for_model("phi2", n_runs=1), batch_sizes=(1, 4))
        with pytest.warns(DeprecationWarning, match="for_model"):
            legacy = batch_size_sweep_specs("phi2", batch_sizes=(1, 4),
                                            n_runs=1)
        assert legacy == modern

    def test_seq_len_legacy_defaults_to_longbench(self):
        with pytest.warns(DeprecationWarning):
            specs = seq_len_sweep_specs("llama", seq_lengths=(256,), n_runs=1)
        assert specs[0].workload == "longbench"

    def test_quantization_legacy_covers_order(self):
        with pytest.warns(DeprecationWarning):
            specs = quantization_sweep_specs("mistral", n_runs=1)
        assert [s.precision for s in specs] == [
            Precision.FP32, Precision.FP16, Precision.INT8, Precision.INT4]

    def test_power_mode_legacy(self):
        with pytest.warns(DeprecationWarning):
            specs = power_mode_sweep_specs("phi2", modes=("MAXN",), n_runs=1)
        assert specs[0].power_mode == "MAXN"

    def test_batch_quant_power_legacy(self):
        with pytest.warns(DeprecationWarning):
            grid = batch_quant_power_sweep_specs("phi2", batch_sizes=(1,),
                                                 n_runs=1)
        assert set(grid) == {Precision.FP16, Precision.INT8, Precision.INT4}

    @pytest.mark.parametrize("builder", [
        batch_size_sweep_specs, seq_len_sweep_specs,
        quantization_sweep_specs, power_mode_sweep_specs,
    ])
    def test_spec_plus_legacy_kwargs_is_refused(self, builder):
        spec = ExperimentSpec.for_model("phi2", n_runs=1)
        with pytest.raises(ExperimentError, match="ExperimentSpec"):
            builder(spec, n_runs=3)

    def test_spec_first_call_is_warning_free(self, recwarn):
        batch_size_sweep_specs(ExperimentSpec.for_model("phi2"),
                               batch_sizes=(1,))
        assert not [w for w in recwarn.list
                    if issubclass(w.category, DeprecationWarning)]


class TestRunFullStudyShim:
    def test_legacy_keywords_warn(self):
        # n_runs=0 makes StudySpec.of raise right after the warning, so
        # the shim is exercised without running any experiment.
        with pytest.warns(DeprecationWarning, match="StudySpec"):
            with pytest.raises(ExperimentError):
                run_full_study(n_runs=0)

    def test_unknown_keyword_is_a_typeerror(self):
        with pytest.raises(TypeError, match="model"):
            run_full_study(model="llama")

    def test_spec_plus_legacy_is_refused(self):
        with pytest.raises(ExperimentError, match="not both"):
            run_full_study(StudySpec(), n_runs=1)

    def test_studyspec_of_normalises_models(self):
        spec = StudySpec.of(["MS-Phi2"], n_runs=1)
        assert spec.models == ("MS-Phi2",)


class TestPlannerShims:
    """``repro.core.planner`` is a deprecated alias of ``repro.plan``."""

    def test_max_batch_size_warns_and_matches_probe(self):
        from repro.core import planner
        from repro.plan import probe_max_batch

        with pytest.warns(DeprecationWarning, match="probe_max_batch"):
            legacy = planner.max_batch_size("phi2", Precision.FP16,
                                            upper=256)
        assert legacy == probe_max_batch("phi2", Precision.FP16, upper=256)

    def test_max_sequence_length_warns_and_matches_probe(self):
        from repro.core import planner
        from repro.plan import probe_max_seq_len

        with pytest.warns(DeprecationWarning, match="probe_max_seq_len"):
            legacy = planner.max_sequence_length("phi2", Precision.FP16,
                                                 batch_size=8)
        assert legacy == probe_max_seq_len("phi2", Precision.FP16,
                                           batch_size=8)

    def test_feasible_compat_reexport(self):
        from repro.core.planner import _feasible
        from repro.plan import engine_feasible

        assert _feasible is engine_feasible

    def test_probe_call_is_warning_free(self, recwarn):
        from repro.plan import probe_max_batch

        probe_max_batch("phi2", Precision.FP16, upper=64)
        assert not [w for w in recwarn.list
                    if issubclass(w.category, DeprecationWarning)]


class TestTraceShim:
    def test_record_and_by_kind_still_work(self):
        trace = Trace()
        trace.record(1.0, "power_w", watts=30.0)
        trace.record(0.5, "decode", tokens=4)
        assert [r.kind for r in trace] == ["decode", "power_w"]
        (rec,) = trace.by_kind("power_w")
        assert rec.data == {"watts": 30.0}
        assert trace.kinds() == ["decode", "power_w"]
        assert len(trace) == 2

    def test_view_projects_observer_spans(self):
        obs = Observer()
        obs.complete("prefill", 0.0, 1.0, track="engine", tokens=8)
        trace = Trace(obs)
        (rec,) = trace.by_kind("prefill")
        assert rec.time == 0.0
        assert rec.data == {"tokens": 8, "duration_s": 1.0}
