"""Back-compat shims for the runtime-backend axis.

Specs and results pickled before ``runtime`` existed must load with the
hf default; the engine's old ``kv_mode=`` keyword must keep working
under a :class:`DeprecationWarning`; and the spec surface must refuse
ambiguous combinations with typed errors.
"""

import pickle

import pytest

from repro.backends import get_backend
from repro.core import ExperimentSpec, StudySpec, spec_fingerprint
from repro.core.sweeps import runtime_sweep_specs
from repro.engine.kernels import EngineCostParams
from repro.engine.runtime import RunResult, ServingEngine
from repro.errors import ConfigError, ExperimentError
from repro.hardware import get_device
from repro.models import get_model
from repro.quant.dtypes import Precision


def _reload_without(obj, *fields):
    """Round-trip ``obj`` through pickle as if serialised before
    ``fields`` existed (old cache entries, worker handoffs)."""
    clone = pickle.loads(pickle.dumps(obj))
    state = dict(clone.__dict__)
    for f in fields:
        state.pop(f, None)
    fresh = object.__new__(type(obj))
    fresh.__setstate__(state)
    return fresh


class TestSpecRuntimeField:
    def test_for_model_accepts_runtime(self):
        spec = ExperimentSpec.for_model("phi2", runtime="gguf")
        assert spec.runtime == "gguf"
        assert ExperimentSpec.for_model("phi2").runtime == "hf-transformers"

    def test_unknown_runtime_is_a_config_error_listing_known(self):
        with pytest.raises(ConfigError, match="known: gguf"):
            ExperimentSpec.for_model("phi2", runtime="onnx")

    def test_kv_mode_is_an_hf_concern(self):
        with pytest.raises(ExperimentError, match="hf-transformers concern"):
            ExperimentSpec.for_model("phi2", runtime="paged",
                                     kv_mode="static")
        # ... but stays a valid ablation axis on the hf runtime.
        spec = ExperimentSpec.for_model("phi2", kv_mode="static")
        assert spec.kv_mode == "static"

    def test_studyspec_of_accepts_runtime(self):
        assert StudySpec.of(["phi2"], runtime="paged").runtime == "paged"
        with pytest.raises(ConfigError, match="unknown runtime"):
            StudySpec.of(["phi2"], runtime="onnx")


class TestOldPicklesLoadCleanly:
    def test_experiment_spec(self):
        old = _reload_without(ExperimentSpec.for_model("phi2"), "runtime")
        assert old.runtime == "hf-transformers"
        assert old == ExperimentSpec.for_model("phi2")

    def test_study_spec(self):
        old = _reload_without(StudySpec.of(["phi2"], n_runs=1), "runtime")
        assert old.runtime == "hf-transformers"

    def test_run_result(self):
        from repro.engine.request import GenerationSpec

        r = RunResult(model="m", device="d", precision=Precision.FP16,
                      batch_size=1, gen=GenerationSpec(1, 1),
                      power_mode="MAXN", runtime="gguf")
        old = _reload_without(r, "runtime")
        assert old.runtime == "hf-transformers"
        assert old.as_row()["runtime"] == "hf-transformers"

    def test_new_pickles_keep_their_runtime(self):
        spec = ExperimentSpec.for_model("phi2", runtime="gguf")
        assert pickle.loads(pickle.dumps(spec)).runtime == "gguf"


class TestEngineKvModeShim:
    def _engine(self, **kwargs):
        return ServingEngine(get_device("jetson-orin-agx-64gb"),
                             get_model("phi2"), Precision.FP16, **kwargs)

    def test_kv_mode_keyword_warns_but_works(self):
        with pytest.warns(DeprecationWarning, match="runtime-backend"):
            engine = self._engine(kv_mode="static")
        assert engine.backend.name == "hf-transformers"
        assert engine.backend.kv_mode == "static"
        assert engine.kv_mode == "static"

    def test_kv_mode_plus_backend_is_refused(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ExperimentError, match="not both"):
                self._engine(kv_mode="static",
                             backend=get_backend("hf-transformers"))

    def test_backend_keyword_is_warning_free(self, recwarn):
        engine = self._engine(backend="gguf")
        assert engine.backend.name == "gguf"
        assert engine.kv_mode is None  # not an hf engine
        assert not [w for w in recwarn.list
                    if issubclass(w.category, DeprecationWarning)]


class TestCacheKeyCoversTheRuntime:
    def test_fingerprint_differs_per_runtime(self):
        params = EngineCostParams()
        base = ExperimentSpec.for_model("phi2", n_runs=1)
        gguf = ExperimentSpec.for_model("phi2", n_runs=1, runtime="gguf")
        assert spec_fingerprint(base, params) != spec_fingerprint(gguf, params)

    def test_fingerprint_sees_backend_configuration_via_kv_mode(self):
        params = EngineCostParams()
        dyn = ExperimentSpec.for_model("phi2", n_runs=1)
        static = ExperimentSpec.for_model("phi2", n_runs=1, kv_mode="static")
        assert spec_fingerprint(dyn, params) != spec_fingerprint(static,
                                                                 params)


class TestRuntimeSweepSpecs:
    def test_defaults_cover_every_registered_backend(self):
        from repro.backends import list_backends

        specs = runtime_sweep_specs(ExperimentSpec.for_model("phi2",
                                                             n_runs=1))
        assert [s.runtime for s in specs] == list_backends()

    def test_non_hf_points_drop_the_kv_mode_ablation(self):
        base = ExperimentSpec.for_model("phi2", n_runs=1, kv_mode="static")
        specs = runtime_sweep_specs(base, runtimes=("hf-transformers",
                                                    "paged"))
        assert specs[0].kv_mode == "static"
        assert specs[1].kv_mode == "dynamic"

    def test_spec_plus_legacy_kwargs_is_refused(self):
        with pytest.raises(ExperimentError, match="ExperimentSpec"):
            runtime_sweep_specs(ExperimentSpec.for_model("phi2"), n_runs=3)
