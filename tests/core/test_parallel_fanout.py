"""Dispatch mechanics of the process fan-out in repro.core.parallel.

Result identity between serial and parallel runs is asserted in
``tests/engine/test_fast_forward.py``; here we pin the machinery those
results ride on: the chunking heuristic, worker-side cache-stats
folding through ``CacheStats.merge``, and pool persistence across
``run_specs`` calls.
"""

from __future__ import annotations

import pytest

import repro.core.parallel as parallel
from repro.core.cache import ResultCache
from repro.core.experiment import ExperimentSpec
from repro.core.parallel import (
    chunk_specs,
    resolve_jobs,
    run_specs,
    shutdown_pool,
)


@pytest.fixture(autouse=True)
def _fresh_pool():
    shutdown_pool()
    yield
    shutdown_pool()


def test_chunk_specs_covers_in_order_and_balanced():
    for n, jobs in [(0, 4), (1, 4), (3, 8), (6, 4), (13, 4), (64, 4),
                    (97, 16), (5, 1)]:
        slices = chunk_specs(n, jobs)
        covered = [i for sl in slices for i in range(n)[sl]]
        assert covered == list(range(n)), (n, jobs)
        sizes = [sl.stop - sl.start for sl in slices]
        assert all(s >= 1 for s in sizes)
        if sizes:
            assert max(sizes) - min(sizes) <= 1, "chunks must be balanced"


def test_chunk_specs_heuristic_tiers():
    # Large sweep: ~4 chunks per worker so stragglers rebalance.
    assert len(chunk_specs(64, 4)) == 16
    # Mid-size sweep: 2 per worker.
    assert len(chunk_specs(13, 4)) == 8
    # Small sweep: one task per worker.
    assert len(chunk_specs(6, 4)) == 4
    # Fewer specs than workers: one spec per task.
    assert len(chunk_specs(3, 8)) == 3
    assert chunk_specs(0, 4) == []


def test_resolve_jobs():
    assert resolve_jobs(None) == 1
    assert resolve_jobs(0) == 1
    assert resolve_jobs(1) == 1
    assert resolve_jobs(3) == 3
    assert resolve_jobs(-1) >= 1


SPECS = [
    ExperimentSpec(model="MS-Phi2", batch_size=2, n_runs=1),
    ExperimentSpec(model="MS-Phi2", batch_size=4, n_runs=1),
    ExperimentSpec(model="MS-Phi2", power_mode="H", batch_size=2, n_runs=1),
]


def test_parallel_folds_worker_cache_stats(tmp_path):
    cache = ResultCache(tmp_path, version="test")
    cold = run_specs(SPECS, jobs=2, cache=cache)
    assert len(cold) == len(SPECS)
    # Every spec was cold: workers missed, computed, and stored; the
    # parent sees the folded counters even though lookups happened in
    # child processes.
    assert cache.stats.misses == len(SPECS)
    assert cache.stats.puts == len(SPECS)
    assert cache.stats.hits == 0

    warm = run_specs(SPECS, jobs=2, cache=cache)
    assert cache.stats.hits == len(SPECS)
    for a, b in zip(cold, warm):
        assert a.as_row() == b.as_row()


def test_pool_persists_across_calls_and_rebuilds_on_config_change(tmp_path):
    run_specs(SPECS, jobs=2)
    first = parallel._pool
    assert first is not None
    run_specs(SPECS[::-1], jobs=2)
    assert parallel._pool is first, "same config must reuse the pool"

    # A different worker configuration (cache root appears in initargs)
    # must tear down and rebuild.
    cache = ResultCache(tmp_path, version="test")
    run_specs(SPECS, jobs=2, cache=cache)
    assert parallel._pool is not first

    shutdown_pool()
    assert parallel._pool is None


def test_serial_path_skips_pool():
    out = run_specs(SPECS[:2], jobs=1)
    assert len(out) == 2
    assert parallel._pool is None
