"""Content-addressed result cache: keys, roundtrips, invalidation."""

from __future__ import annotations

import pickle

import pytest

from repro.calibration.constants import CALIBRATED_COST_PARAMS
from repro.core.cache import (
    COST_MODEL_VERSION,
    CACHE_DIR_ENV,
    ResultCache,
    get_default_cache,
    set_default_cache,
    spec_fingerprint,
)
from repro.core.experiment import ExperimentSpec, run_experiment
from repro.quant.dtypes import Precision

SPEC = ExperimentSpec(model="MS-Phi2", batch_size=2, n_runs=1)
PARAMS = CALIBRATED_COST_PARAMS


def test_fingerprint_is_stable_and_spec_sensitive():
    a = spec_fingerprint(SPEC, PARAMS)
    assert a == spec_fingerprint(SPEC, PARAMS)
    assert len(a) == 64 and int(a, 16) >= 0
    # Every spec field participates in the key.
    variants = [
        ExperimentSpec(model="Llama3", batch_size=2, n_runs=1),
        ExperimentSpec(model="MS-Phi2", batch_size=4, n_runs=1),
        ExperimentSpec(model="MS-Phi2", batch_size=2, n_runs=2),
        ExperimentSpec(model="MS-Phi2", batch_size=2, n_runs=1,
                       precision=Precision.INT8),
        ExperimentSpec(model="MS-Phi2", batch_size=2, n_runs=1,
                       power_mode="H"),
        ExperimentSpec(model="MS-Phi2", batch_size=2, n_runs=1,
                       workload="longbench"),
        ExperimentSpec(model="MS-Phi2", batch_size=2, n_runs=1,
                       kv_mode="static"),
    ]
    keys = {spec_fingerprint(s, PARAMS) for s in variants}
    assert len(keys) == len(variants) and a not in keys


def test_fingerprint_invalidates_on_params_and_version():
    base = spec_fingerprint(SPEC, PARAMS)
    assert spec_fingerprint(SPEC, PARAMS.with_(bw_scale=0.9)) != base
    assert spec_fingerprint(SPEC, PARAMS, version="other") != base


def test_roundtrip_and_stats(tmp_path):
    cache = ResultCache(tmp_path)
    assert cache.get(SPEC, PARAMS) is None
    assert cache.stats.misses == 1 and cache.stats.hits == 0

    result = run_experiment(SPEC)
    cache.put(SPEC, PARAMS, result)
    assert len(cache) == 1 and cache.stats.puts == 1

    got = cache.get(SPEC, PARAMS)
    assert got is not None and cache.stats.hits == 1
    assert got.as_row() == result.as_row()
    assert got.mean_latency_s == result.mean_latency_s
    assert got.energy_j == result.energy_j
    assert cache.stats.hit_rate == pytest.approx(0.5)


def test_corrupt_entry_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(SPEC, PARAMS, run_experiment(SPEC))
    path = cache._path_for(cache.key_for(SPEC, PARAMS))
    path.write_bytes(b"not a pickle")
    assert cache.get(SPEC, PARAMS) is None


def test_clear_removes_entries(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(SPEC, PARAMS, run_experiment(SPEC))
    assert cache.clear() == 1
    assert len(cache) == 0


def test_run_experiment_uses_and_fills_cache(tmp_path):
    cache = ResultCache(tmp_path)
    first = run_experiment(SPEC, cache=cache)
    assert cache.stats.misses == 1 and cache.stats.puts == 1
    second = run_experiment(SPEC, cache=cache)
    assert cache.stats.hits == 1
    assert second.as_row() == first.as_row()
    assert second.workload == SPEC.workload


def test_different_params_never_hit_stale_entries(tmp_path):
    cache = ResultCache(tmp_path)
    run_experiment(SPEC, cache=cache)
    other = PARAMS.with_(host_step_s=PARAMS.host_step_s * 2)
    res = run_experiment(SPEC, params=other, cache=cache)
    assert cache.stats.hits == 0 and cache.stats.misses == 2
    baseline = run_experiment(SPEC)
    assert res.mean_latency_s > baseline.mean_latency_s

    # A version bump orphans every existing entry too.
    stale = ResultCache(tmp_path, version=COST_MODEL_VERSION + ".bump")
    assert stale.get(SPEC, PARAMS) is None


def test_default_cache_resolution(tmp_path, monkeypatch):
    set_default_cache(None)
    try:
        assert get_default_cache() is None
        installed = ResultCache(tmp_path)
        set_default_cache(installed)
        assert get_default_cache() is installed
        # run_experiment picks the default up without an explicit cache.
        run_experiment(SPEC)
        assert installed.stats.puts == 1
    finally:
        set_default_cache(None)


def test_env_var_enables_default_cache(tmp_path, monkeypatch):
    import repro.core.cache as cache_mod

    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "envcache"))
    monkeypatch.setattr(cache_mod, "_default_cache", None)
    monkeypatch.setattr(cache_mod, "_default_resolved", False)
    try:
        cache = get_default_cache()
        assert cache is not None
        assert cache.root == tmp_path / "envcache"
    finally:
        set_default_cache(None)


def test_cached_result_pickles_standalone(tmp_path):
    # Workers exchange RunResults across process boundaries.
    result = run_experiment(SPEC)
    clone = pickle.loads(pickle.dumps(result))
    assert clone.as_row() == result.as_row()
