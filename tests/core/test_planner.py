"""Capacity planner, cross-validated against the paper's OOM cells."""

import pytest

from repro.core.planner import max_batch_size, max_sequence_length
from repro.engine.request import GenerationSpec
from repro.errors import ExperimentError
from repro.quant.dtypes import Precision


class TestMaxBatch:
    def test_phi2_supports_paper_batch_range(self):
        best = max_batch_size("phi2", Precision.FP16, upper=512)
        assert best is not None
        assert best >= 128  # the paper ran bs=128 successfully

    def test_oversized_model_returns_none(self):
        assert max_batch_size("deepq", Precision.FP16,
                              gen=GenerationSpec(2, 2)) is None

    def test_boundary_is_tight(self):
        best = max_batch_size("mistral", Precision.FP16, upper=256)
        assert best is not None
        from repro.core.planner import _feasible

        assert _feasible("mistral", Precision.FP16, "jetson-orin-agx-64gb",
                         best, GenerationSpec(32, 64))
        if best < 256:
            assert not _feasible("mistral", Precision.FP16,
                                 "jetson-orin-agx-64gb", best + 1,
                                 GenerationSpec(32, 64))

    def test_validation(self):
        with pytest.raises(ExperimentError):
            max_batch_size("phi2", Precision.FP16, upper=0)


class TestMaxSeqLen:
    def test_phi2_boundary_matches_paper_oom_band(self):
        """The paper: Phi-2 runs sl=256 and OOMs at sl=512 (bs=32)."""
        best = max_sequence_length("phi2", Precision.FP16, batch_size=32)
        assert best is not None
        assert 256 <= best < 512

    def test_llama_comfortably_exceeds_1024(self):
        best = max_sequence_length("llama", Precision.FP16, batch_size=32,
                                   upper=4096)
        assert best is not None
        assert best >= 1024  # the paper ran sl=1024

    def test_smaller_batch_allows_longer_context(self):
        b32 = max_sequence_length("phi2", Precision.FP16, batch_size=32)
        b8 = max_sequence_length("phi2", Precision.FP16, batch_size=8)
        assert b8 > b32

    def test_validation(self):
        with pytest.raises(ExperimentError):
            max_sequence_length("phi2", Precision.FP16, input_fraction=1.5)
