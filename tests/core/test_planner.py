"""Feasibility probes, cross-validated against the paper's OOM cells."""

import pytest

from repro.engine.request import GenerationSpec
from repro.errors import ExperimentError
from repro.plan import engine_feasible, probe_max_batch, probe_max_seq_len
from repro.quant.dtypes import Precision


class TestMaxBatch:
    def test_phi2_supports_paper_batch_range(self):
        best = probe_max_batch("phi2", Precision.FP16, upper=512)
        assert best is not None
        assert best >= 128  # the paper ran bs=128 successfully

    def test_oversized_model_returns_none(self):
        assert probe_max_batch("deepq", Precision.FP16,
                               gen=GenerationSpec(2, 2)) is None

    def test_boundary_is_tight(self):
        best = probe_max_batch("mistral", Precision.FP16, upper=256)
        assert best is not None
        assert engine_feasible("mistral", Precision.FP16,
                               "jetson-orin-agx-64gb", best,
                               GenerationSpec(32, 64))
        if best < 256:
            assert not engine_feasible("mistral", Precision.FP16,
                                       "jetson-orin-agx-64gb", best + 1,
                                       GenerationSpec(32, 64))

    def test_validation(self):
        with pytest.raises(ExperimentError):
            probe_max_batch("phi2", Precision.FP16, upper=0)

    def test_probes_run_on_boards_that_cannot_apply_agx_clocks(self):
        """The Orin NX cannot apply the paper's AGX MAXN clocks; the
        probe runs it at its native operating point instead (the OOM
        boundary is clock-independent)."""
        best = probe_max_batch("phi2", Precision.FP16,
                               device="jetson-orin-nx-16gb", upper=64)
        assert best is not None
        assert 1 <= best <= 64


class TestMaxSeqLen:
    def test_phi2_boundary_matches_paper_oom_band(self):
        """The paper: Phi-2 runs sl=256 and OOMs at sl=512 (bs=32)."""
        best = probe_max_seq_len("phi2", Precision.FP16, batch_size=32)
        assert best is not None
        assert 256 <= best < 512

    def test_llama_comfortably_exceeds_1024(self):
        best = probe_max_seq_len("llama", Precision.FP16, batch_size=32,
                                 upper=4096)
        assert best is not None
        assert best >= 1024  # the paper ran sl=1024

    def test_smaller_batch_allows_longer_context(self):
        b32 = probe_max_seq_len("phi2", Precision.FP16, batch_size=32)
        b8 = probe_max_seq_len("phi2", Precision.FP16, batch_size=8)
        assert b8 > b32

    def test_validation(self):
        with pytest.raises(ExperimentError):
            probe_max_seq_len("phi2", Precision.FP16, input_fraction=1.5)


class TestSpecSurface:
    def test_feasibility_envelope_via_planspec(self):
        from repro.plan import PlanSpec

        env = PlanSpec(model="phi2", input_tokens=32,
                       output_tokens=64).feasibility(
            upper_batch=256, batch_size=32)
        assert env.max_batch_size is not None
        assert env.max_batch_size >= 128
        assert env.max_seq_len is not None
        assert 256 <= env.max_seq_len < 512

    def test_envelope_is_none_when_weights_overflow(self):
        from repro.plan import PlanSpec

        env = PlanSpec(model="deepq", input_tokens=2,
                       output_tokens=2).feasibility(upper_batch=4)
        assert env.max_batch_size is None
        assert env.max_seq_len is None
