"""Single-flight semantics of ResultCache.get_or_compute.

The shared on-disk cache already tolerated concurrent writers (atomic
rename).  The claim protocol adds a stronger guarantee: a *cold* key is
computed exactly once fleet-wide — concurrent callers block on the
winner's claim and read its result.  These tests race two real
processes through one cold key, and exercise the crash-safety edges
(dead-owner takeover, mtime-stale takeover, wait-timeout fallback).
"""

from __future__ import annotations

import multiprocessing
import os
import time

from repro.calibration.constants import CALIBRATED_COST_PARAMS
from repro.core.cache import CacheStats, ResultCache, _claim_is_stale
from repro.core.experiment import ExperimentSpec

SPEC = ExperimentSpec(model="MS-Phi2", batch_size=2, n_runs=1)


def _claim_path(cache: ResultCache, spec=SPEC):
    key = cache.key_for(spec, CALIBRATED_COST_PARAMS)
    path = cache._path_for(key)
    return path.parent / f"{key}.claim"


def _race_child(root, barrier, queue):
    cache = ResultCache(root, version="test")
    computed = []

    def compute():
        computed.append(os.getpid())
        time.sleep(0.25)  # hold the claim long enough to force a wait
        return {"payload": "sentinel"}

    barrier.wait()
    result = cache.get_or_compute(SPEC, CALIBRATED_COST_PARAMS, compute)
    queue.put((os.getpid(), result, len(computed), cache.stats.as_row()))


def test_two_processes_racing_cold_key_compute_once(tmp_path):
    barrier = multiprocessing.Barrier(2)
    queue = multiprocessing.Queue()
    procs = [multiprocessing.Process(target=_race_child,
                                     args=(str(tmp_path), barrier, queue))
             for _ in range(2)]
    for p in procs:
        p.start()
    rows = [queue.get(timeout=30) for _ in procs]
    for p in procs:
        p.join(timeout=30)
        assert p.exitcode == 0

    results = [r[1] for r in rows]
    assert results[0] == results[1] == {"payload": "sentinel"}
    n_computes = sorted(r[2] for r in rows)
    assert n_computes == [0, 1], "exactly one process may compute"
    stats = {r[2]: r[3] for r in rows}
    # The winner: one miss, one put, no waiting.
    assert stats[1]["puts"] == 1 and stats[1]["dedup_waits"] == 0
    # The loser: a miss resolved by waiting on the winner's claim.
    assert stats[0]["puts"] == 0 and stats[0]["dedup_waits"] == 1
    # The claim is released once the result is published.
    cache = ResultCache(str(tmp_path), version="test")
    assert not _claim_path(cache).exists()


def test_winner_removes_claim_and_populates(tmp_path):
    cache = ResultCache(str(tmp_path), version="test")
    calls = []
    out = cache.get_or_compute(SPEC, CALIBRATED_COST_PARAMS,
                               lambda: calls.append(1) or {"v": 7})
    assert out == {"v": 7} and calls == [1]
    assert not _claim_path(cache).exists()
    assert cache.stats.misses == 1 and cache.stats.puts == 1
    # Second call is a plain hit: no compute, no claim.
    out2 = cache.get_or_compute(SPEC, CALIBRATED_COST_PARAMS,
                                lambda: calls.append(2) or {"v": 8})
    assert out2 == {"v": 7} and calls == [1]
    assert cache.stats.hits == 1


def _exit_immediately():
    pass


def test_dead_owner_claim_is_taken_over(tmp_path):
    cache = ResultCache(str(tmp_path), version="test")
    claim = _claim_path(cache)
    claim.parent.mkdir(parents=True, exist_ok=True)
    # A claim owned by a pid that no longer exists.
    p = multiprocessing.Process(target=_exit_immediately)
    p.start()
    dead_pid = p.pid
    p.join()
    claim.write_text(str(dead_pid))
    assert _claim_is_stale(claim, claim_stale_s=300.0)

    out = cache.get_or_compute(SPEC, CALIBRATED_COST_PARAMS,
                               lambda: {"v": "recovered"})
    assert out == {"v": "recovered"}
    assert not claim.exists()


def test_mtime_stale_claim_is_taken_over(tmp_path):
    cache = ResultCache(str(tmp_path), version="test")
    claim = _claim_path(cache)
    claim.parent.mkdir(parents=True, exist_ok=True)
    claim.write_text(str(os.getpid()))  # owner alive, but ancient
    old = time.time() - 1000
    os.utime(claim, (old, old))
    assert _claim_is_stale(claim, claim_stale_s=300.0)
    out = cache.get_or_compute(SPEC, CALIBRATED_COST_PARAMS,
                               lambda: {"v": "took-over"},
                               claim_stale_s=300.0)
    assert out == {"v": "took-over"}


def test_wait_timeout_computes_anyway(tmp_path):
    cache = ResultCache(str(tmp_path), version="test")
    claim = _claim_path(cache)
    claim.parent.mkdir(parents=True, exist_ok=True)
    claim.write_text(str(os.getpid()))  # live, fresh claim: a wedged owner
    out = cache.get_or_compute(SPEC, CALIBRATED_COST_PARAMS,
                               lambda: {"v": "gave-up-waiting"},
                               wait_timeout_s=0.05)
    assert out == {"v": "gave-up-waiting"}
    assert cache.stats.puts == 1 and cache.stats.dedup_waits == 0


def test_cache_stats_merge_snapshot_delta():
    a = CacheStats(hits=2, misses=3, puts=1, dedup_waits=1)
    before = a.snapshot()
    assert before == a and before is not a
    a.hits += 5
    a.dedup_waits += 2
    d = a.delta_since(before)
    assert (d.hits, d.misses, d.puts, d.dedup_waits) == (5, 0, 0, 2)

    total = CacheStats().merge(before).merge(d)
    assert (total.hits, total.misses, total.puts, total.dedup_waits) == \
        (7, 3, 1, 3)
    assert total.lookups == 10 and total.hit_rate == 0.7
    row = total.as_row()
    assert row["dedup_waits"] == 3 and row["hit_rate"] == 0.7
