"""KvLifecyclePolicy: name grammar, victim selection, identity."""

import pytest

from repro.errors import ConfigError
from repro.kvtier import (
    AGGRESSIVE_TRIGGER,
    KV_TIER_VERSION,
    VICTIM_ORDERS,
    SacrificePolicy,
    SwapPolicy,
    get_kv_policy,
    list_kv_policies,
)


class _Req:
    def __init__(self, arrival_s, last_token_s=None):
        self.arrival_s = arrival_s
        self.last_token_s = last_token_s


class TestGrammar:
    def test_default_is_sacrifice(self):
        p = get_kv_policy(None)
        assert isinstance(p, SacrificePolicy)
        assert p.victim == "lifo" and p.trigger == 1.0
        assert not p.preserves_kv

    def test_compound_names(self):
        p = get_kv_policy("swap-lru-aggressive")
        assert isinstance(p, SwapPolicy)
        assert p.preserves_kv
        assert p.victim == "lru"
        assert p.trigger == AGGRESSIVE_TRIGGER

    def test_conservative_qualifier(self):
        assert get_kv_policy("swap-fifo-conservative").trigger == 1.0

    def test_instance_passthrough(self):
        p = SwapPolicy(victim="fifo")
        assert get_kv_policy(p) is p
        assert get_kv_policy(p, trigger=0.5).trigger == 0.5

    def test_overrides_beat_qualifiers(self):
        assert get_kv_policy("swap-aggressive", trigger=0.7).trigger == 0.7

    @pytest.mark.parametrize("bad", ["drop", "swap-random", "swap-lru-bogus"])
    def test_unknown_names_raise(self, bad):
        with pytest.raises(ConfigError):
            get_kv_policy(bad)

    @pytest.mark.parametrize("trigger", [0.0, -0.1, 1.5])
    def test_trigger_bounds(self, trigger):
        with pytest.raises(ConfigError):
            get_kv_policy("swap", trigger=trigger)

    def test_host_capacity_bounds(self):
        with pytest.raises(ConfigError):
            SwapPolicy(host_capacity_frac=0.0)

    def test_listing(self):
        assert list(list_kv_policies()) == ["sacrifice", "swap"]


class TestVictimSelection:
    def setup_method(self):
        # Admission order != arrival order, so ties are observable.
        self.reqs = [_Req(2.0, last_token_s=5.0),
                     _Req(1.0, last_token_s=9.0),
                     _Req(3.0)]  # never produced a token

    def test_lifo_picks_youngest_arrival(self):
        p = get_kv_policy("sacrifice")
        assert p.select_victim(self.reqs) is self.reqs[2]

    def test_fifo_picks_oldest_arrival(self):
        p = get_kv_policy("swap-fifo")
        assert p.select_victim(self.reqs) is self.reqs[1]

    def test_lru_picks_stalest_token(self):
        # req[2] never decoded: ranks by arrival (3.0); req[0] is stalest.
        p = get_kv_policy("swap-lru")
        assert p.select_victim(self.reqs) is self.reqs[2]
        self.reqs[2].last_token_s = 10.0
        assert p.select_victim(self.reqs) is self.reqs[0]

    def test_keep_is_never_chosen(self):
        p = get_kv_policy("sacrifice")
        assert p.select_victim(self.reqs, keep=self.reqs[2]) is self.reqs[0]
        assert p.select_victim([self.reqs[0]], keep=self.reqs[0]) is None
        assert p.select_victim([]) is None

    def test_lifo_matches_historical_preempt_youngest(self):
        # Bit-for-bit the old rule: max over (arrival, admission index).
        p = get_kv_policy("sacrifice")
        tied = [_Req(1.0), _Req(1.0), _Req(1.0)]
        assert p.select_victim(tied) is tied[2]


class TestIdentity:
    def test_effective_budget(self):
        assert get_kv_policy("swap").effective_budget(1000) == 1000
        assert get_kv_policy("swap-aggressive").effective_budget(1000) == 850

    def test_labels(self):
        assert get_kv_policy("sacrifice").label == "sacrifice-lifo@1"
        assert get_kv_policy("swap-lru-aggressive").label == "swap-lru@0.85"

    def test_config_payload_carries_version(self):
        payload = get_kv_policy("swap-lru").config_payload()
        assert payload["kv_tier_version"] == KV_TIER_VERSION
        assert payload["name"] == "swap"
        assert payload["victim"] == "lru"
        assert payload["host_capacity_frac"] == 0.5

    def test_payloads_distinguish_policies(self):
        seen = set()
        for mode in list_kv_policies():
            for victim in VICTIM_ORDERS:
                p = get_kv_policy(f"{mode}-{victim}")
                seen.add(str(sorted(p.config_payload().items())))
        assert len(seen) == len(list_kv_policies()) * len(VICTIM_ORDERS)
