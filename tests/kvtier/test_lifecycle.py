"""KV lifecycle end-to-end: swap vs sacrifice, prefix sharing, traces.

The acceptance properties of the kvtier subsystem:

- a swap round-trip is *lossless*: the per-request decode trajectory is
  identical to an uninterrupted run — only timing and energy differ —
  across the precision x power-mode grid;
- sacrifice makes the KV loss explicit: every drop emits the existing
  ``kv_transfer`` instant so traces show where bytes must move again;
- shared-prefix caching turns prompt overlap into TTFT reduction.
"""

import pytest

from repro.cluster import EdgeCluster, FleetSpec, NodeSpec
from repro.cluster.workload import poisson_workload, shared_prefix_workload
from repro.engine.scheduler import ContinuousBatchScheduler, ServeRequest
from repro.hardware import get_device
from repro.models import get_model
from repro.obs import Observer, kinds
from repro.quant.dtypes import Precision

DEVICE = "jetson-orin-agx-64gb"
MODEL = "llama3.1-8b"


def pressured_cluster(kv_policy, budget_frac=0.005, precision="fp16",
                      power_mode="MAXN", observer=None):
    """One node whose KV budget is shrunk until preemption must fire."""
    cluster = EdgeCluster.of(FleetSpec.of(
        [NodeSpec(DEVICE, power_mode=power_mode, max_batch=8,
                  runtime="paged", kv_policy=kv_policy)],
        model=MODEL, precision=precision), observer=observer)
    node = cluster.nodes[0]
    node._kv_budget_base = max(1, int(node._kv_budget_base * budget_frac))
    node._explicit_kv_budget = True
    return cluster


def workload(n=24, rate=4.0, seed=0):
    return shared_prefix_workload(rate, n, prefix_tokens=128, share_ratio=0.0,
                                  unique_tokens=32, output_tokens=64,
                                  seed=seed)


def trajectory(report):
    return [(r.req_id, r.generated, r.output_tokens, r.rejected)
            for r in report.requests]


class TestSwapRoundTrip:
    @pytest.mark.parametrize("precision", ["fp16", "int8"])
    @pytest.mark.parametrize("power_mode", ["MAXN", "H"])
    def test_round_trip_matches_uninterrupted_run(self, precision,
                                                  power_mode):
        """Satellite property: swap->swap-in preserves the decode
        trajectory bit-for-bit; only timing/energy move."""
        # int8 halves KV bytes/token, so halve the budget to keep the
        # same preemption pressure across the precision axis.
        frac = 0.005 if precision == "fp16" else 0.0025
        base = EdgeCluster.of(FleetSpec.of(
            [NodeSpec(DEVICE, power_mode=power_mode, max_batch=8,
                      runtime="paged")],
            model=MODEL, precision=precision,
        )).run(workload(n=16))
        swapped = pressured_cluster("swap-lru", budget_frac=frac,
                                    precision=precision,
                                    power_mode=power_mode).run(workload(n=16))
        assert swapped.swap_outs > 0          # preemption actually fired
        assert swapped.swap_ins > 0           # and the KV came back
        assert swapped.lost_tokens == 0       # nothing recomputed
        assert swapped.sacrifices == 0
        assert trajectory(swapped) == trajectory(base)
        # The transfers cost wall time the clean run never paid.
        assert swapped.makespan_s > base.makespan_s

    def test_sacrifice_recomputes_swap_does_not(self):
        sac = pressured_cluster("sacrifice").run(workload())
        swp = pressured_cluster("swap-lru").run(workload())
        assert sac.sacrifices > 0 and sac.lost_tokens > 0
        assert swp.lost_tokens == 0
        assert swp.swapped_gb > 0
        assert sac.swap_outs == 0  # sacrifice never touches the host tier

    def test_swap_report_columns_always_present(self):
        row = pressured_cluster("sacrifice").run(workload(n=6)).as_row()
        for col in ("swap_outs", "swap_ins", "sacrifices", "swapped_gb",
                    "prefix_hit_tokens", "prefix_hit_rate"):
            assert col in row


class TestSacrificeTrace:
    def test_sacrifice_emits_kv_transfer_instant(self):
        """Satellite: drop + re-prefill shows up as the existing
        ``kv_transfer`` span kind, reason-tagged."""
        obs = Observer()
        report = pressured_cluster("sacrifice", observer=obs).run(workload())
        assert report.sacrifices > 0
        drops = [i for i in obs.instants if i.name == kinds.KV_TRANSFER
                 and dict(i.args).get("reason") == "sacrifice"]
        assert len(drops) == report.sacrifices
        for i in drops:
            args = dict(i.args)
            assert args["kv_bytes"] > 0
            assert "lost_tokens" in args

    def test_swap_emits_swap_spans(self):
        obs = Observer()
        report = pressured_cluster("swap-lru", observer=obs).run(workload())
        outs = [i for i in obs.instants if i.name == kinds.KV_SWAP_OUT]
        ins = [s for s in obs.spans if s.name == kinds.KV_SWAP_IN]
        assert len(outs) == report.swap_outs > 0
        assert len(ins) == report.swap_ins > 0
        hist = obs.metrics.histogram("kv_swap_in_s")
        assert hist.count == report.swap_ins


class TestPrefixSharing:
    def test_shared_prompts_cut_ttft(self):
        def run(share):
            reqs = shared_prefix_workload(4.0, 24, prefix_tokens=128,
                                          share_ratio=share,
                                          unique_tokens=32, output_tokens=32,
                                          seed=1)
            cluster = EdgeCluster.of(FleetSpec.of(
                [NodeSpec(DEVICE, max_batch=8, runtime="paged")],
                model=MODEL, precision="fp16"))
            return cluster.run(reqs)

        cold = run(0.0)
        hot = run(0.8)
        assert hot.prefix_hit_tokens > 0
        assert hot.prefix_hit_rate > 0.3
        assert hot.p50_ttft_s < cold.p50_ttft_s
        assert cold.prefix_hit_tokens == 0

    def test_engine_prefix_cache_requires_paged(self):
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError):
            ContinuousBatchScheduler(
                get_device(DEVICE), get_model("llama"), Precision.FP16,
                paged=False, prefix_cache=True)

    def test_engine_level_sharing(self):
        """The single-node scheduler shares blocks through the same
        radix tree when prompts carry token ids."""
        prefix = tuple(range(64))

        def reqs():
            return [ServeRequest(req_id=i, arrival_s=0.2 * i,
                                 input_tokens=80, output_tokens=32,
                                 prompt_ids=prefix + tuple(
                                     1000 + 16 * i + j for j in range(16)))
                    for i in range(8)]

        def run(prefix_cache):
            s = ContinuousBatchScheduler(
                get_device(DEVICE), get_model("llama"), Precision.FP16,
                max_batch=8, paged=True, prefix_cache=prefix_cache)
            report = s.serve(reqs())
            ttfts = [r.ttft_s for r in report.requests]
            return s, sum(ttfts) / len(ttfts)

        s_off, ttft_off = run(False)
        s_on, ttft_on = run(True)
        assert s_on.prefix_stats.hit_tokens > 0
        assert ttft_on < ttft_off
        assert s_off.prefix_stats is None
