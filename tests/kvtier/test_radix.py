"""RadixPrefixCache: matching, pinning, COW splits, LRU reclamation."""

import pytest

from repro.errors import ConfigError
from repro.kvtier import RadixPrefixCache

BT = 4       # block_tokens — small so boundaries are easy to hit
BB = 100     # block_bytes


def cache():
    return RadixPrefixCache(block_tokens=BT, block_bytes=BB)


def toks(*ranges):
    out = []
    for r in ranges:
        out.extend(r)
    return tuple(out)


class TestMatchInsert:
    def test_empty_tree_misses(self):
        c = cache()
        assert c.match((1, 2, 3), now=0.0) == 0
        assert c.stats.lookups == 1 and c.stats.hits == 0

    def test_insert_then_full_match(self):
        c = cache()
        prompt = tuple(range(8))
        assert c.insert(1, prompt, now=0.0) == 0  # cold: nothing cached
        assert c.match(prompt, now=1.0) == 8
        assert c.stats.hit_tokens == 8

    def test_only_whole_blocks_count_as_hit(self):
        c = cache()
        c.insert(1, tuple(range(8)), now=0.0)
        # 6 tokens match but only one 4-token block is reusable.
        assert c.match(tuple(range(6)), now=1.0) == 6
        assert c.block_hit_tokens(6) == 4
        hit = c.insert(2, toks(range(6), [99, 98]), now=2.0)
        assert hit == 4

    def test_second_owner_shares_prefix(self):
        c = cache()
        shared = tuple(range(8))
        c.insert(1, shared + (10, 11), now=0.0)
        hit = c.insert(2, shared + (20, 21), now=1.0)
        assert hit == 8
        assert c.stats.hits == 1

    def test_double_pin_rejected(self):
        c = cache()
        c.insert(1, (1, 2), now=0.0)
        with pytest.raises(ConfigError):
            c.insert(1, (1, 2), now=1.0)

    def test_bad_geometry_rejected(self):
        with pytest.raises(ConfigError):
            RadixPrefixCache(block_tokens=0, block_bytes=BB)


class TestCopyOnWrite:
    def test_mid_block_divergence_costs_a_copy(self):
        c = cache()
        c.insert(1, toks(range(6)), now=0.0)
        # Diverges at token 5 — inside the second block: COW.
        c.insert(2, toks(range(5), [99]), now=1.0)
        assert c.stats.cow_copies == 1
        assert c.stats.cow_bytes == BB

    def test_block_aligned_divergence_is_free(self):
        c = cache()
        c.insert(1, toks(range(8)), now=0.0)
        # Diverges exactly at the 4-token block boundary: no copy.
        c.insert(2, toks(range(4), [99, 98]), now=1.0)
        assert c.stats.cow_copies == 0


class TestAccounting:
    def test_resident_counts_whole_blocks_only(self):
        c = cache()
        c.insert(1, tuple(range(10)), now=0.0)  # 2 full blocks + 2 tokens
        assert c.resident_blocks == 2
        assert c.resident_bytes == 2 * BB

    def test_split_preserves_block_accounting(self):
        c = cache()
        shared = tuple(range(8))
        c.insert(1, shared + (10, 11, 12, 13), now=0.0)  # 3 full blocks
        before = c.resident_blocks
        c.insert(2, shared + (20, 21, 22, 23), now=1.0)
        # The fork shares 2 blocks and adds 1 private one.
        assert c.resident_blocks == before + 1 == 4


class TestReclaim:
    def test_pinned_paths_survive(self):
        c = cache()
        c.insert(1, tuple(range(8)), now=0.0)
        assert c.reclaim(10 ** 9, now=1.0) == 0
        assert c.resident_blocks == 2

    def test_release_makes_reclaimable(self):
        c = cache()
        c.insert(1, tuple(range(8)), now=0.0)
        c.release(1)
        assert not c.holds(1)
        freed = c.reclaim(10 ** 9, now=1.0)
        assert freed == 2 * BB
        assert c.resident_blocks == 0
        assert c.stats.evicted_blocks == 2

    def test_lru_order(self):
        c = cache()
        c.insert(1, (1, 2, 3, 4), now=0.0)
        c.insert(2, (9, 8, 7, 6), now=5.0)
        c.release(1)
        c.release(2)
        c.match((1, 2, 3, 4), now=10.0)  # owner 1's path is now hottest
        freed = c.reclaim(1, now=11.0)   # evict exactly one leaf
        assert freed == BB
        assert c.match((9, 8, 7, 6), now=12.0) == 0   # the cold one went
        assert c.match((1, 2, 3, 4), now=13.0) == 4   # the hot one stayed

    def test_clear_drops_everything(self):
        c = cache()
        c.insert(1, tuple(range(8)), now=0.0)
        c.clear()
        assert c.resident_blocks == 0
        assert not c.holds(1)
        assert c.match(tuple(range(8)), now=1.0) == 0
