"""HostSwapSpace bookkeeping and the bandwidth model."""

import pytest

from repro.errors import ConfigError
from repro.hardware import get_device
from repro.kvtier import HostSwapSpace, swap_bandwidth_bytes_s
from repro.kvtier.swap import PCIE_HOST_LINK_BYTES_S


class TestBandwidth:
    def test_unified_memory_pays_read_plus_write(self, orin):
        mem = orin.memory
        streaming = (mem.peak_bandwidth * mem.streaming_efficiency
                     * mem.effective_ratio)
        assert orin.unified_memory
        assert swap_bandwidth_bytes_s(orin) == pytest.approx(streaming / 2.0)

    def test_discrete_gpu_caps_at_host_link(self, a100):
        assert not a100.unified_memory
        assert swap_bandwidth_bytes_s(a100) == pytest.approx(
            PCIE_HOST_LINK_BYTES_S)

    def test_low_power_mode_slows_swaps(self):
        from repro.power.modes import apply_power_mode, get_power_mode

        maxn = get_device("jetson-orin-agx-64gb")
        low = get_device("jetson-orin-agx-64gb")
        apply_power_mode(low, get_power_mode("H"))
        assert swap_bandwidth_bytes_s(low) < swap_bandwidth_bytes_s(maxn)


class TestHostSwapSpace:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ConfigError):
            HostSwapSpace(0)

    def test_round_trip_accounting(self):
        host = HostSwapSpace(1000)
        sec_out = host.swap_out(7, 400, bandwidth_bytes_s=100.0)
        assert sec_out == pytest.approx(4.0)
        assert host.holds(7) and host.host_bytes == 400
        nbytes, sec_in = host.swap_in(7, bandwidth_bytes_s=200.0)
        assert (nbytes, sec_in) == (400, pytest.approx(2.0))
        assert not host.holds(7) and host.host_bytes == 0
        st = host.stats
        assert (st.swap_outs, st.swap_ins) == (1, 1)
        assert st.swapped_out_bytes == st.swapped_in_bytes == 400
        assert st.peak_host_bytes == 400
        assert st.transfer_seconds == pytest.approx(6.0)

    def test_can_hold_is_exact_at_capacity(self):
        host = HostSwapSpace(1000)
        host.swap_out(1, 600, 1.0)
        assert host.can_hold(400)
        assert not host.can_hold(401)
        host.swap_out(2, 400, 1.0)
        with pytest.raises(ConfigError):
            host.swap_out(3, 1, 1.0)

    def test_double_swap_out_rejected(self):
        host = HostSwapSpace(1000)
        host.swap_out(1, 100, 1.0)
        with pytest.raises(ConfigError):
            host.swap_out(1, 100, 1.0)

    def test_swap_in_requires_held_kv(self):
        with pytest.raises(ConfigError):
            HostSwapSpace(1000).swap_in(9, 1.0)

    def test_nonpositive_bytes_rejected(self):
        with pytest.raises(ConfigError):
            HostSwapSpace(1000).swap_out(1, 0, 1.0)

    def test_drop_releases_without_transfer(self):
        host = HostSwapSpace(1000)
        host.swap_out(1, 300, 1.0)
        before = host.stats.transfer_seconds
        assert host.drop(1) == 300
        assert host.host_bytes == 0 and not host.holds(1)
        assert host.drop(1) == 0  # idempotent
        assert host.stats.transfer_seconds == before
        assert host.stats.swap_ins == 0

    def test_as_row_shape(self):
        host = HostSwapSpace(10 ** 9)
        host.swap_out(1, 5 * 10 ** 8, 1e9)
        row = host.stats.as_row()
        assert row["swap_outs"] == 1
        assert row["swapped_gb"] == pytest.approx(0.5)
        assert set(row) == {"swap_outs", "swap_ins", "sacrifices",
                            "swapped_gb", "swap_transfer_s"}
