"""The ``repro kvtier`` sweep: determinism, identity, reporting."""

import dataclasses

import pytest

from repro.errors import ConfigError
from repro.kvtier import KvTierSpec, run_kvtier, sweep_rows_csv
from repro.kvtier.policy import KV_TIER_VERSION

TINY = KvTierSpec(n_requests=16, policies=("sacrifice", "swap-lru"),
                  triggers=(1.0,), share_ratios=(0.0, 0.5))


class TestDeterminism:
    def test_sweep_is_bit_reproducible(self):
        """The CI gate: two runs of one spec, byte-identical CSV."""
        a = sweep_rows_csv(run_kvtier(TINY))
        b = sweep_rows_csv(run_kvtier(TINY))
        assert a == b
        assert a.endswith("\n")

    def test_row_order_is_share_policy_trigger(self):
        rep = run_kvtier(TINY)
        assert [(r["share_ratio"], r["policy"]) for r in rep.rows] == [
            (0.0, "sacrifice-lifo@1"), (0.0, "swap-lru@1"),
            (0.5, "sacrifice-lifo@1"), (0.5, "swap-lru@1"),
        ]

    def test_pressure_point_separates_policies(self):
        rows = {r["policy"]: r for r in run_kvtier(TINY).rows
                if r["share_ratio"] == 0.0}
        sac, swp = rows["sacrifice-lifo@1"], rows["swap-lru@1"]
        assert sac["lost_tokens"] > 0 and sac["sacrifices"] > 0
        assert swp["lost_tokens"] == 0 and swp["swap_outs"] > 0

    def test_prefix_share_cuts_ttft(self):
        rows = run_kvtier(TINY).rows
        by_share = {r["share_ratio"]: r for r in rows
                    if r["policy"].startswith("swap")}
        assert by_share[0.5]["prefix_hit_tokens"] > 0
        assert by_share[0.5]["p50_ttft_s"] < by_share[0.0]["p50_ttft_s"]


class TestIdentity:
    def test_cache_key_stable_and_field_sensitive(self):
        assert TINY.cache_key() == TINY.cache_key()
        assert (dataclasses.replace(TINY, seed=1).cache_key()
                != TINY.cache_key())

    def test_cache_key_folds_kvtier_version(self):
        from repro.core.cache import payload_fingerprint

        payload = dataclasses.asdict(TINY)
        payload["kv_tier_version"] = KV_TIER_VERSION
        assert TINY.cache_key() == payload_fingerprint(payload)

    @pytest.mark.parametrize("bad", [
        dict(policies=()),
        dict(policies=("sacrifice", "nope")),
        dict(triggers=(0.0,)),
        dict(share_ratios=(1.5,)),
        dict(kv_budget_frac=0.0),
    ])
    def test_validation(self, bad):
        with pytest.raises(ConfigError):
            KvTierSpec(**bad)


class TestReporting:
    def test_table_renders_every_row(self):
        rep = run_kvtier(TINY)
        lines = rep.table().splitlines()
        assert len(lines) == 1 + len(rep.rows)
        assert lines[0].startswith("policy")

    def test_kv_policy_comparison_baseline_deltas(self):
        from repro.reporting import kv_policy_comparison

        def serving_report(policy):
            from tests.kvtier.test_lifecycle import (pressured_cluster,
                                                     workload)
            return pressured_cluster(policy).run(workload(n=16))

        rows = kv_policy_comparison([
            ("sacrifice-lifo@1", serving_report("sacrifice")),
            ("swap-lru@1", serving_report("swap-lru")),
        ])
        assert rows[0]["goodput_x"] == 1.0
        assert rows[0]["ttft_saved_s"] == 0.0
        assert isinstance(rows[1]["goodput_x"], float)
        assert rows[1]["lost_tokens"] == 0

    def test_comparison_without_baseline_leaves_deltas_blank(self):
        from tests.kvtier.test_lifecycle import pressured_cluster, workload
        from repro.reporting import kv_policy_comparison

        rep = pressured_cluster("swap-lru").run(workload(n=6))
        rows = kv_policy_comparison([("swap-lru@1", rep)])
        assert rows[0]["goodput_x"] == ""


class TestChaosIntegration:
    def test_kv_policy_folds_into_chaos_cache_key(self):
        from repro.faults import ChaosSpec

        a = ChaosSpec()
        b = ChaosSpec(kv_policy="swap-lru")
        assert a.kv_policy == "sacrifice"
        assert a.cache_key() != b.cache_key()

    def test_nodespec_validates_policy_names(self):
        from repro.cluster import NodeSpec

        with pytest.raises(ConfigError):
            NodeSpec("jetson-orin-agx-64gb", kv_policy="bogus")
        spec = NodeSpec("jetson-orin-agx-64gb", kv_policy="swap",
                        kv_trigger=0.9)
        assert spec.resolved_kv_policy().trigger == 0.9
