"""Trace generators: determinism, shape, validation."""

import numpy as np
import pytest

from repro.cluster.workload import (
    DEFAULT_TENANTS,
    ClusterRequest,
    TenantProfile,
    as_cluster_requests,
    bursty_workload,
    diurnal_workload,
    multi_tenant_workload,
    poisson_workload,
)
from repro.engine.scheduler import ServeRequest
from repro.errors import ExperimentError, WorkloadError


class TestPoissonCompat:
    def test_reexported_from_engine_scheduler(self):
        from repro.engine import scheduler

        assert scheduler.poisson_workload is poisson_workload
        with pytest.raises(AttributeError):
            scheduler.no_such_symbol

    def test_original_behaviour_preserved(self):
        reqs = poisson_workload(2.0, 10, seed=4)
        assert len(reqs) == 10
        assert all(isinstance(r, ServeRequest) for r in reqs)
        assert [r.req_id for r in reqs] == list(range(10))
        with pytest.raises(ExperimentError):
            poisson_workload(0.0, 5)


class TestBursty:
    def test_deterministic_and_sorted(self):
        a = bursty_workload(1.0, 8.0, 100, seed=9)
        b = bursty_workload(1.0, 8.0, 100, seed=9)
        assert [r.arrival_s for r in a] == [r.arrival_s for r in b]
        assert [r.arrival_s for r in a] == sorted(r.arrival_s for r in a)

    def test_burstier_than_poisson(self):
        """MMPP inter-arrival CV must exceed the memoryless CV of 1."""
        reqs = bursty_workload(0.5, 20.0, 800, mean_calm_s=20.0,
                               mean_burst_s=5.0, seed=2)
        gaps = np.diff([r.arrival_s for r in reqs])
        cv = gaps.std() / gaps.mean()
        assert cv > 1.2

    def test_validation(self):
        with pytest.raises(WorkloadError):
            bursty_workload(2.0, 1.0, 10)  # burst < calm
        with pytest.raises(WorkloadError):
            bursty_workload(0.0, 1.0, 10)
        with pytest.raises(WorkloadError):
            bursty_workload(1.0, 2.0, 10, mean_calm_s=0.0)


class TestDiurnal:
    def test_deterministic_and_rate_modulated(self):
        a = diurnal_workload(2.0, 400, period_s=100.0, swing=0.9, seed=1)
        b = diurnal_workload(2.0, 400, period_s=100.0, swing=0.9, seed=1)
        assert [r.arrival_s for r in a] == [r.arrival_s for r in b]
        # More arrivals land in the rising half-period than the trough.
        phases = [(r.arrival_s % 100.0) / 100.0 for r in a]
        peak = sum(1 for p in phases if 0.0 <= p < 0.5)
        trough = sum(1 for p in phases if 0.5 <= p < 1.0)
        assert peak > trough * 1.5

    def test_validation(self):
        with pytest.raises(WorkloadError):
            diurnal_workload(2.0, 10, swing=1.0)
        with pytest.raises(WorkloadError):
            diurnal_workload(-1.0, 10)


class TestMultiTenant:
    def test_mix_and_determinism(self):
        a = multi_tenant_workload(3.0, 300, seed=6)
        b = multi_tenant_workload(3.0, 300, seed=6)
        assert [(r.tenant, r.input_tokens, r.output_tokens) for r in a] == \
               [(r.tenant, r.input_tokens, r.output_tokens) for r in b]
        names = {r.tenant for r in a}
        assert names == {t.name for t in DEFAULT_TENANTS}
        # Weighted mix: chat (weight 6) dominates analytics (weight 1).
        chat = sum(1 for r in a if r.tenant == "chat")
        analytics = sum(1 for r in a if r.tenant == "analytics")
        assert chat > 3 * analytics

    def test_tenant_shapes_follow_profiles(self):
        reqs = multi_tenant_workload(3.0, 400, seed=0)
        mean_in = {}
        for t in DEFAULT_TENANTS:
            lens = [r.input_tokens for r in reqs if r.tenant == t.name]
            mean_in[t.name] = np.mean(lens)
        assert mean_in["summarize"] > 4 * mean_in["chat"]

    def test_bursty_arrivals_supported(self):
        reqs = multi_tenant_workload(1.0, 50, arrivals="bursty", seed=3)
        assert len(reqs) == 50
        with pytest.raises(WorkloadError):
            multi_tenant_workload(1.0, 10, arrivals="weird")
        with pytest.raises(WorkloadError):
            multi_tenant_workload(1.0, 10, tenants=[])

    def test_profile_validation(self):
        with pytest.raises(WorkloadError):
            TenantProfile("bad", weight=0.0)
        with pytest.raises(WorkloadError):
            TenantProfile("bad", mean_input_tokens=0.0)
        with pytest.raises(WorkloadError):
            TenantProfile("bad", min_tokens=10, max_tokens=5)

    def test_zero_cv_is_deterministic_shape(self):
        t = TenantProfile("fixed", cv_input=0.0, cv_output=0.0,
                          mean_input_tokens=32, mean_output_tokens=16)
        rng = np.random.default_rng(0)
        assert t.sample_shape(rng) == (32, 16)


class TestUpgrade:
    def test_as_cluster_requests(self):
        plain = poisson_workload(1.0, 3, seed=0)
        up = as_cluster_requests(plain)
        assert all(isinstance(r, ClusterRequest) for r in up)
        assert [r.arrival_s for r in up] == [r.arrival_s for r in plain]
        # Already-upgraded requests pass through untouched.
        again = as_cluster_requests(up)
        assert again[0] is up[0]
