"""Routing policies and node admission control."""

import pytest

from repro.cluster import (
    ClusterNode,
    ClusterRequest,
    EnergyAwareRouter,
    get_router,
    list_policies,
)
from repro.errors import ConfigError
from repro.hardware import get_device
from repro.models import get_model
from repro.quant.dtypes import Precision
from repro.sim.environment import Environment


def make_node(env, node_id, device="jetson-orin-agx-64gb", **kw):
    return ClusterNode(env, node_id, get_device(device), get_model("llama"),
                       Precision.FP16, **kw)


def req(req_id=0, inp=32, out=32, arrival=0.0):
    return ClusterRequest(req_id=req_id, arrival_s=arrival,
                          input_tokens=inp, output_tokens=out)


class TestRegistry:
    def test_all_policies_listed(self):
        assert list_policies() == [
            "carbon-aware", "energy-aware", "jsq", "least-kv",
            "prefix-affinity", "round-robin", "splitwise",
        ]

    def test_unknown_policy_raises_config_error_listing_policies(self):
        with pytest.raises(ConfigError) as exc:
            get_router("fifo")
        msg = str(exc.value)
        assert "fifo" in msg
        for policy in list_policies():
            assert policy in msg

    def test_non_string_policy_is_config_error_not_attribute_error(self):
        with pytest.raises(ConfigError):
            get_router(None)
        with pytest.raises(ConfigError):
            get_router(42)


class TestNodeAdmission:
    def test_queue_cap_refuses(self):
        env = Environment()
        node = make_node(env, 0, max_queue=2)
        assert node.submit(req(0))
        assert node.submit(req(1))
        assert not node.submit(req(2))

    def test_oversized_request_refused_outright(self):
        env = Environment()
        node = make_node(env, 0)
        monster = req(0, inp=10_000_000, out=10_000_000)
        assert not node.fits(monster)
        assert not node.submit(monster)

    def test_kv_pressure_counts_queued_work(self):
        env = Environment()
        node = make_node(env, 0)
        assert node.kv_pressure == 0.0
        node.submit(req(0))
        assert node.kv_pressure > 0.0


class TestPolicies:
    def test_round_robin_cycles(self):
        env = Environment()
        nodes = [make_node(env, i) for i in range(3)]
        router = get_router("round-robin")
        picks = [router.choose(req(i), nodes).node_id for i in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_jsq_picks_emptiest(self):
        env = Environment()
        nodes = [make_node(env, i) for i in range(3)]
        nodes[0].submit(req(0))
        nodes[0].submit(req(1))
        nodes[1].submit(req(2))
        assert get_router("jsq").choose(req(3), nodes).node_id == 2

    def test_least_kv_prefers_headroom(self):
        env = Environment()
        # Same queue depths, very different KV loads.
        nodes = [make_node(env, i) for i in range(2)]
        nodes[0].submit(req(0, inp=1024, out=1024))
        nodes[1].submit(req(1, inp=16, out=16))
        assert get_router("least-kv").choose(req(2), nodes).node_id == 1

    def test_energy_aware_prefers_efficient_device(self):
        env = Environment()
        orin = make_node(env, 0, device="jetson-orin-agx-64gb")
        xavier = make_node(env, 1, device="jetson-xavier-agx-32gb")
        router = EnergyAwareRouter()
        assert router.score(orin) < router.score(xavier)
        assert router.choose(req(0), [xavier, orin]) is orin

    def test_energy_aware_score_tracks_power_mode(self):
        """Down-clocking a node must lower its predicted J/token."""
        from repro.power.modes import apply_power_mode, get_power_mode

        env = Environment()
        node = make_node(env, 0)
        at_maxn = node.predicted_j_per_token()
        apply_power_mode(node.device, get_power_mode("A"))
        assert node.predicted_j_per_token() < at_maxn

    def test_energy_aware_load_penalty_spills(self):
        env = Environment()
        orin = make_node(env, 0, device="jetson-orin-agx-64gb")
        other = make_node(env, 1, device="jetson-orin-agx-32gb")
        router = EnergyAwareRouter(load_weight=1.0)
        for i in range(8):
            orin.submit(req(i))
        assert router.choose(req(9), [orin, other]) is other

    def test_choose_returns_none_when_saturated(self):
        env = Environment()
        nodes = [make_node(env, 0, max_queue=1)]
        nodes[0].submit(req(0))
        for name in ("round-robin", "jsq", "least-kv", "energy-aware"):
            assert get_router(name).choose(req(1), nodes) is None


class TestSplitwise:
    def test_roles_split_by_compute(self):
        env = Environment()
        xavier = make_node(env, 0, device="jetson-xavier-agx-32gb")
        orin = make_node(env, 1, device="jetson-orin-agx-64gb")
        router = get_router("splitwise")
        router.assign_roles([xavier, orin])
        # The compute-strong Orin prefills; the Xavier decodes.
        assert orin.role == "prefill"
        assert xavier.role == "decode"
        assert router.choose(req(0), [xavier, orin]) is orin
        assert router.choose_decode(req(0)) is xavier

    def test_transfer_time_scales_with_prompt(self):
        env = Environment()
        nodes = [make_node(env, 0), make_node(env, 1)]
        router = get_router("splitwise", link_bytes_per_s=1e9)
        router.assign_roles(nodes)
        short = router.transfer_seconds(req(0, inp=64), nodes[0])
        long = router.transfer_seconds(req(1, inp=512), nodes[0])
        assert long == pytest.approx(8 * short)

    def test_needs_two_nodes(self):
        env = Environment()
        router = get_router("splitwise")
        with pytest.raises(ConfigError):
            router.assign_roles([make_node(env, 0)])
