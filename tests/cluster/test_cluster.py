"""End-to-end cluster serving: invariants every policy must hold.

The acceptance bar from the subsystem's introduction:

- determinism: a fixed seed gives a bit-identical report for every
  routing policy;
- conservation: every injected request is completed xor rejected, and
  no token is served twice (fleet-served tokens == sum of per-request
  generated counts == completed * output_tokens);
- monotonicity: a higher arrival rate never lowers p99 TTFT.
"""

import pytest

from repro.cluster import (
    AutoscalerConfig,
    EdgeCluster,
    FleetSpec,
    NodeSpec,
    PowerModeAutoscaler,
    SLOSpec,
    list_policies,
    multi_tenant_workload,
    poisson_workload,
)
from repro.errors import ConfigError, ExperimentError

FLEET = [
    NodeSpec("jetson-orin-agx-64gb", max_batch=4),
    NodeSpec("jetson-orin-agx-32gb", max_batch=4),
]


def serve(policy, rate=2.0, n=24, seed=3, specs=FLEET, out=16, **run_kw):
    fleet = FleetSpec.of(list(specs), model="llama", precision="fp16",
                         policy=policy)
    cluster = EdgeCluster.of(fleet, **run_kw)
    reqs = poisson_workload(rate, n, input_tokens=16, output_tokens=out,
                            seed=seed)
    return cluster, cluster.run(reqs)


class TestConservation:
    @pytest.mark.parametrize("policy", list_policies())
    def test_every_request_completed_or_rejected(self, policy):
        cluster, rep = serve(policy)
        assert rep.completed + rep.rejected == rep.n_requests
        for r in rep.requests:
            done = r.finish_s is not None
            assert done != r.rejected  # exactly one outcome
            if done:
                assert r.generated == r.output_tokens
            else:
                assert r.generated == 0

    @pytest.mark.parametrize("policy", list_policies())
    def test_no_token_served_twice(self, policy):
        cluster, rep = serve(policy)
        fleet_tokens = sum(n.served_tokens for n in cluster.nodes)
        assert fleet_tokens == sum(r.generated for r in rep.requests)
        assert fleet_tokens == rep.completed * 16

    def test_rejection_under_tiny_queues(self):
        specs = [NodeSpec("jetson-orin-agx-64gb", max_batch=1, max_queue=1)]
        cluster, rep = serve("jsq", rate=50.0, n=40, specs=specs, out=64)
        assert rep.rejected > 0
        assert rep.completed + rep.rejected == 40
        rejected = [r for r in rep.requests if r.rejected]
        assert all(r.retries > 0 for r in rejected)


class TestDeterminism:
    @pytest.mark.parametrize("policy", list_policies())
    def test_same_seed_same_report(self, policy):
        _, a = serve(policy, seed=7)
        _, b = serve(policy, seed=7)
        assert a.as_row() == b.as_row()
        assert [(r.first_token_s, r.finish_s, r.node_id) for r in a.requests] \
            == [(r.first_token_s, r.finish_s, r.node_id) for r in b.requests]


class TestMonotonicity:
    @pytest.mark.parametrize("policy", list_policies())
    def test_p99_ttft_nondecreasing_in_rate(self, policy):
        p99s = []
        for rate in (0.5, 2.0, 8.0):
            _, rep = serve(policy, rate=rate, n=30)
            assert rep.rejected == 0  # keep the completed sets comparable
            p99s.append(rep.p99_ttft_s)
        assert p99s == sorted(p99s), p99s


class TestReports:
    def test_energy_accounting_consistent(self):
        # Sparse trace: long idle stretches between requests, so the
        # clock-independent idle floor dominates the sampler-integrated
        # fleet energy and must push it above the busy-only accounting.
        # (On dense traces the 1 s sampling grid can undershoot short
        # busy spikes, so the ordering is only guaranteed here.)
        cluster, rep = serve("jsq", rate=0.2, n=8)
        assert rep.fleet_energy_j > 0
        assert rep.busy_energy_j > 0
        assert rep.fleet_energy_j > rep.busy_energy_j
        per_request = sum(r.energy_j for r in rep.requests)
        # Decode-step energy is attributed to tokens; prefill energy is
        # accounted busy but not attributed, so attribution <= busy.
        assert 0 < per_request <= rep.busy_energy_j * 1.001

    def test_per_request_energy_bounded_by_busy_on_dense_trace(self):
        _, rep = serve("jsq")
        per_request = sum(r.energy_j for r in rep.requests)
        assert 0 < per_request <= rep.busy_energy_j * 1.001

    def test_multi_tenant_fairness_reported(self):
        cluster = EdgeCluster.of(FleetSpec.of(
            list(FLEET), model="llama", precision="fp16",
            policy="least-kv"))
        reqs = multi_tenant_workload(3.0, 40, seed=2)
        rep = cluster.run(reqs)
        assert len(rep.tenants) == 3
        assert sum(t.injected for t in rep.tenants) == 40
        assert 0.0 < rep.jains_index <= 1.0
        assert 0.0 <= rep.max_min_share <= 1.0

    def test_splitwise_prefill_and_decode_separated(self):
        cluster, rep = serve("splitwise")
        prefill = [n for n in cluster.nodes if n.role == "prefill"]
        decode = [n for n in cluster.nodes if n.role == "decode"]
        assert prefill and decode
        assert all(n.served_tokens == 0 for n in prefill)
        assert all(n.prefilled_tokens == 0 for n in decode)
        assert sum(n.prefilled_tokens for n in prefill) == rep.completed * 16

    def test_slo_attainment_depends_on_deadline(self):
        _, strict = serve("jsq", slo=SLOSpec(ttft_s=0.001, tpot_s=None))
        _, loose = serve("jsq", slo=SLOSpec(ttft_s=1e6, tpot_s=None))
        assert strict.slo_attainment == 0.0
        assert loose.slo_attainment == 1.0


class TestFaultFreeResilience:
    """The fault-free path must report perfect resilience numbers —
    exactly, so chaos CSVs diff cleanly against clean baselines."""

    @pytest.mark.parametrize("policy", list_policies())
    def test_availability_is_exactly_one(self, policy):
        _, rep = serve(policy)
        assert rep.availability == 1.0  # == on purpose: no float drift
        assert rep.mttr_s == 0.0
        assert rep.requeues == 0
        assert rep.lost_tokens == 0

    def test_resilience_columns_always_present(self):
        _, rep = serve("jsq")
        row = rep.as_row()
        assert row["availability"] == 1.0
        assert row["mttr_s"] == 0.0
        assert row["retries"] >= 0
        assert row["requeues"] == 0


class TestAutoscaler:
    def test_scales_up_under_load_and_down_when_calm(self):
        cluster = EdgeCluster.of(FleetSpec.of(
            list(FLEET), model="llama", precision="fp16", policy="jsq"))
        scaler = PowerModeAutoscaler(
            cluster.env, cluster.nodes,
            AutoscalerConfig(period_s=1.0, up_depth=2, down_depth=1),
        )
        cluster.attach_autoscaler(scaler)
        reqs = poisson_workload(8.0, 30, input_tokens=16, output_tokens=16,
                                seed=1)
        cluster.run(reqs)
        ups = [s for s in scaler.history
               if s.reason.startswith("depth") and s.mode != "B"]
        assert scaler.n_switches() > 0
        assert ups, "never scaled up under an 8 req/s burst"

    def test_determinism_with_autoscaler(self):
        def once():
            cluster = EdgeCluster.of(FleetSpec.of(
                list(FLEET), model="llama", precision="fp16",
                policy="energy-aware"))
            cluster.attach_autoscaler(PowerModeAutoscaler(
                cluster.env, cluster.nodes, AutoscalerConfig(period_s=1.0)))
            return cluster.run(poisson_workload(4.0, 25, seed=9)).as_row()

        assert once() == once()

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            AutoscalerConfig(ladder=("MAXN",))
        with pytest.raises(ConfigError):
            AutoscalerConfig(period_s=0.0)
        with pytest.raises(ConfigError):
            AutoscalerConfig(up_depth=2, down_depth=2)
        with pytest.raises(ConfigError):
            AutoscalerConfig(ladder=("B", "NOPE"))

    def test_clamping_fits_small_devices(self):
        from repro.cluster import clamp_mode_to_device
        from repro.hardware import get_device
        from repro.power.modes import get_power_mode

        dev = get_device("jetson-orin-agx-32gb")  # GPU caps at 930 MHz
        mode = clamp_mode_to_device(get_power_mode("MAXN"), dev)
        assert mode.gpu_freq_hz == dev.gpu.max_freq_hz
        assert mode.cpu_online_cores == dev.cpu.total_cores


class TestValidation:
    def test_empty_cluster_and_trace(self):
        with pytest.raises(ConfigError):
            FleetSpec.of([], model="llama", precision="fp16")
        cluster = EdgeCluster.of(FleetSpec.of(list(FLEET), model="llama",
                                              precision="fp16"))
        with pytest.raises(ExperimentError):
            cluster.run([])
