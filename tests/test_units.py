"""Unit conversion helpers."""

import pytest

from repro import units


def test_binary_byte_units_roundtrip():
    assert units.gib(1) == 2**30
    assert units.mib(3) == 3 * 2**20
    assert units.kib(2) == 2048
    assert units.to_gib(units.gib(7.5)) == pytest.approx(7.5)
    assert units.to_mib(units.mib(1.25)) == pytest.approx(1.25)


def test_frequency_units():
    assert units.mhz(1301) == pytest.approx(1.301e9)
    assert units.ghz(2.2) == pytest.approx(2.2e9)
    assert units.to_mhz(units.mhz(665)) == pytest.approx(665)


def test_bandwidth_and_flops_are_decimal():
    assert units.gb_per_s(204.8) == pytest.approx(204.8e9)
    assert units.to_gb_per_s(1e9) == pytest.approx(1.0)
    assert units.tflops(5.33) == pytest.approx(5.33e12)
    assert units.to_tflops(1e12) == pytest.approx(1.0)


def test_fmt_bytes_picks_sensible_unit():
    assert units.fmt_bytes(units.gib(5.6)) == "5.60 GiB"
    assert units.fmt_bytes(units.mib(2)) == "2.00 MiB"
    assert units.fmt_bytes(units.kib(1)) == "1.00 KiB"
    assert units.fmt_bytes(17) == "17 B"


def test_fmt_duration_scales():
    assert units.fmt_duration(12.85) == "12.85 s"
    assert units.fmt_duration(0.00373) == "3.73 ms"
    assert units.fmt_duration(9e-6) == "9.0 us"
