"""Quantization error measurement and the kernel overhead model."""

import pytest

from repro.errors import QuantizationError
from repro.models import PAPER_MODELS, get_model
from repro.quant import Precision, QuantKernelModel, measure_quant_error, perplexity_delta
from repro.quant.error import outlier_column_fraction


class TestErrorMeasurement:
    def test_error_ordering_fp16_int8_int4(self):
        arch = get_model("llama")
        errs = {
            p: measure_quant_error(arch, p, seed=7, n_tokens=64).rel_matmul_error
            for p in (Precision.FP32, Precision.FP16, Precision.INT8, Precision.INT4)
        }
        assert errs[Precision.FP32] == 0.0
        assert errs[Precision.FP16] < errs[Precision.INT8] < errs[Precision.INT4]

    def test_int8_error_shrinks_with_model_scale(self):
        """Bigger models: more outliers handled in FP16, cleaner bulk."""
        e = {
            name: measure_quant_error(arch, Precision.INT8, seed=3,
                                      n_tokens=64).rel_matmul_error
            for name, arch in PAPER_MODELS.items()
        }
        assert e["Mistral-Base"] < e["MS-Phi2"]
        assert e["Deepseek-Qwen"] < e["MS-Phi2"]

    def test_outlier_fraction_grows_with_scale(self):
        fracs = [outlier_column_fraction(a) for a in PAPER_MODELS.values()]
        assert fracs == sorted(fracs)
        assert all(0.0 < f < 0.01 for f in fracs)

    def test_deterministic_under_seed(self):
        arch = get_model("phi2")
        a = measure_quant_error(arch, Precision.INT4, seed=5, n_tokens=32)
        b = measure_quant_error(arch, Precision.INT4, seed=5, n_tokens=32)
        assert a.rel_matmul_error == b.rel_matmul_error

    def test_perplexity_delta_math(self):
        assert perplexity_delta(6.0, 0.0, 1.0) == pytest.approx(6.0)
        assert perplexity_delta(6.0, 0.1, 2.0) > 6.0
        with pytest.raises(QuantizationError):
            perplexity_delta(-1.0, 0.1, 1.0)
        with pytest.raises(QuantizationError):
            perplexity_delta(6.0, -0.1, 1.0)


class TestKernelOverheads:
    @pytest.fixture
    def model(self):
        return QuantKernelModel()

    def test_fallback_selection(self, model, orin, a100):
        assert model.uses_fallback(orin.gpu, Precision.INT8)
        assert not model.uses_fallback(a100.gpu, Precision.INT8)
        # 4-bit always dequantizes, even on A100.
        assert model.uses_fallback(a100.gpu, Precision.INT4)
        assert not model.uses_fallback(orin.gpu, Precision.FP16)

    def test_dequant_cost_scales_with_params_on_edge(self, model, orin):
        small = model.dequant_seconds(get_model("phi2"), orin.gpu, Precision.INT8)
        big = model.dequant_seconds(get_model("deepq"), orin.gpu, Precision.INT8)
        assert big > 10 * small
        assert model.dequant_seconds(get_model("phi2"), orin.gpu, Precision.FP16) == 0

    def test_no_weight_dequant_on_a100_int8(self, model, a100):
        assert model.dequant_seconds(get_model("deepq"), a100.gpu, Precision.INT8) == 0.0
        # Instead there is a per-token activation cost.
        act = model.activation_overhead_seconds(get_model("deepq"), a100.gpu,
                                                Precision.INT8, n_tokens=32)
        assert act > 0

    def test_int8_gemm_speedup_only_native(self, model, orin, a100):
        assert model.math_rate_multiplier(a100.gpu, Precision.INT8) == 2.0
        assert model.math_rate_multiplier(orin.gpu, Precision.INT8) == 1.0

    def test_gpu_util_caps_match_paper(self, model):
        assert model.gpu_utilization(Precision.INT8) == pytest.approx(0.60)
        assert model.gpu_utilization(Precision.INT4) == pytest.approx(1.00)

    def test_dequant_alu_split(self, model):
        assert model.dequant_alu_fraction(Precision.INT4) > \
            model.dequant_alu_fraction(Precision.INT8)
        assert model.dequant_alu_fraction(Precision.FP16) == 0.0

    def test_dequant_scales_inverse_with_gpu_clock(self, model, orin):
        arch = get_model("llama")
        full = model.dequant_seconds(arch, orin.gpu, Precision.INT8)
        orin.gpu.set_freq(orin.gpu.max_freq_hz / 2)
        assert model.dequant_seconds(arch, orin.gpu, Precision.INT8) == \
            pytest.approx(2 * full)

    def test_validation(self):
        with pytest.raises(QuantizationError):
            QuantKernelModel(int8_cycles_per_param=-1)


class TestPrecisionParsing:
    def test_parse_roundtrip(self):
        for p in Precision:
            assert Precision.parse(p.value) is p
            assert Precision.parse(p.value.upper()) is p

    def test_parse_rejects_unknown(self):
        with pytest.raises(QuantizationError, match="unknown precision"):
            Precision.parse("fp8")

    def test_quantized_flags(self):
        assert Precision.INT8.is_quantized and Precision.INT4.is_quantized
        assert not Precision.FP16.is_quantized
        assert Precision.FP32.bits == 32 and Precision.INT4.bits == 4
