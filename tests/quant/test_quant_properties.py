"""Property-based quantization invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.quant import (
    absmax_dequantize_int8,
    absmax_quantize_int8,
    blockwise_dequantize,
    blockwise_quantize,
)

finite_floats = st.floats(min_value=-100.0, max_value=100.0,
                          allow_nan=False, allow_infinity=False, width=32)


@given(w=arrays(np.float32, st.tuples(st.integers(1, 20), st.integers(1, 40)),
                elements=finite_floats))
@settings(max_examples=60, deadline=None)
def test_absmax_roundtrip_error_within_half_step(w):
    q, scales = absmax_quantize_int8(w)
    back = absmax_dequantize_int8(q, scales)
    bound = np.broadcast_to(scales, w.shape) * 0.5 + 1e-6
    assert np.all(np.abs(back - w) <= bound + 1e-4 * np.abs(w))


@given(w=arrays(np.float32, st.tuples(st.integers(1, 20), st.integers(1, 40)),
                elements=finite_floats))
@settings(max_examples=60, deadline=None)
def test_absmax_idempotent(w):
    """Quantizing an already-quantized tensor is lossless."""
    q1, s1 = absmax_quantize_int8(w)
    w1 = absmax_dequantize_int8(q1, s1)
    q2, s2 = absmax_quantize_int8(w1)
    w2 = absmax_dequantize_int8(q2, s2)
    assert np.allclose(w1, w2, atol=1e-5, rtol=1e-4)


@given(
    w=arrays(np.float32, st.integers(1, 400), elements=finite_floats),
    block=st.sampled_from([16, 64, 128]),
    scheme=st.sampled_from(["nf4", "int4"]),
)
@settings(max_examples=60, deadline=None)
def test_blockwise_roundtrip_preserves_shape_and_sign_of_extremes(w, block, scheme):
    q = blockwise_quantize(w, block_size=block, scheme=scheme)
    back = blockwise_dequantize(q)
    assert back.shape == w.shape
    # The absolute maximum of each tensor survives with its sign (it maps
    # to a codebook endpoint).
    if np.abs(w).max() > 0:
        i = int(np.abs(w).argmax())
        assert np.sign(back.flat[i]) == np.sign(w.flat[i])
        assert np.abs(back.flat[i]) <= np.abs(w.flat[i]) + 1e-6


@given(
    w=arrays(np.float32, st.integers(64, 256), elements=finite_floats),
)
@settings(max_examples=40, deadline=None)
def test_blockwise_error_never_exceeds_blockwise_absmax(w):
    q = blockwise_quantize(w, block_size=64, scheme="nf4")
    back = blockwise_dequantize(q)
    # Worst case error per element < absmax of its block (coarse bound).
    pad = (-w.size) % 64
    wp = np.concatenate([w, np.zeros(pad, np.float32)]).reshape(-1, 64)
    bound = np.abs(wp).max(axis=1, keepdims=True).repeat(64, axis=1).reshape(-1)[: w.size]
    assert np.all(np.abs(back - w) <= bound + 1e-6)
