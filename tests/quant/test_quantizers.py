"""absmax INT8, LLM.int8() and blockwise 4-bit quantizers."""

import numpy as np
import pytest

from repro.errors import QuantizationError
from repro.quant import (
    LLMInt8Linear,
    NF4_CODEBOOK,
    absmax_dequantize_int8,
    absmax_quantize_int8,
    blockwise_dequantize,
    blockwise_quantize,
    llm_int8_decompose,
)


class TestAbsmax:
    def test_roundtrip_error_bounded(self, rng):
        w = rng.standard_normal((64, 128)).astype(np.float32)
        q, scales = absmax_quantize_int8(w)
        back = absmax_dequantize_int8(q, scales)
        # Max error per element is half a quantization step.
        steps = scales.repeat(w.shape[1], axis=1)
        assert np.all(np.abs(back - w) <= steps * 0.5 + 1e-7)

    def test_preserves_extremes(self, rng):
        w = rng.standard_normal((8, 16)).astype(np.float32)
        q, _ = absmax_quantize_int8(w)
        assert q.max() == 127 or q.min() == -127

    def test_zero_rows_handled(self):
        w = np.zeros((4, 8), dtype=np.float32)
        q, scales = absmax_quantize_int8(w)
        assert (q == 0).all()
        assert np.isfinite(scales).all()

    def test_axis0_quantization(self, rng):
        w = rng.standard_normal((16, 8)).astype(np.float32)
        q, scales = absmax_quantize_int8(w, axis=0)
        assert scales.shape == (1, 8)

    def test_validation(self):
        with pytest.raises(QuantizationError):
            absmax_quantize_int8(np.ones(5))
        with pytest.raises(QuantizationError):
            absmax_quantize_int8(np.ones((2, 2)), axis=2)
        with pytest.raises(QuantizationError):
            absmax_quantize_int8(np.empty((0, 3)))
        with pytest.raises(QuantizationError):
            absmax_dequantize_int8(np.ones((2, 2), dtype=np.int32), np.ones((2, 1)))


class TestBlockwise:
    def test_nf4_codebook_properties(self):
        assert NF4_CODEBOOK.size == 16
        assert NF4_CODEBOOK[0] == -1.0 and NF4_CODEBOOK[-1] == 1.0
        assert (np.diff(NF4_CODEBOOK) > 0).all()
        assert 0.0 in NF4_CODEBOOK

    @pytest.mark.parametrize("scheme", ["nf4", "int4"])
    def test_roundtrip_shape_and_bound(self, rng, scheme):
        w = (rng.standard_normal((37, 53)) * 0.05).astype(np.float32)
        q = blockwise_quantize(w, block_size=64, scheme=scheme)
        back = blockwise_dequantize(q)
        assert back.shape == w.shape
        # Error bounded by the coarsest code gap times the block absmax.
        gap = np.max(np.diff(q.codebook))
        blocks = np.abs(w).reshape(-1)  # loose bound via global max
        assert np.abs(back - w).max() <= gap * np.abs(w).max() + 1e-7

    def test_nf4_beats_int4_on_gaussian(self, rng):
        """NF4's quantile codebook is optimal for normal weights."""
        w = rng.standard_normal((128, 128)).astype(np.float32) * 0.02
        e_nf4 = np.linalg.norm(blockwise_dequantize(blockwise_quantize(w, scheme="nf4")) - w)
        e_int4 = np.linalg.norm(blockwise_dequantize(blockwise_quantize(w, scheme="int4")) - w)
        assert e_nf4 < e_int4

    def test_padding_for_non_multiple_sizes(self, rng):
        w = rng.standard_normal(100).astype(np.float32)  # not a multiple of 64
        q = blockwise_quantize(w, block_size=64)
        assert blockwise_dequantize(q).shape == (100,)

    def test_codes_fit_4_bits(self, rng):
        w = rng.standard_normal((16, 16)).astype(np.float32)
        q = blockwise_quantize(w)
        assert q.codes.max() <= 15

    def test_validation(self):
        with pytest.raises(QuantizationError):
            blockwise_quantize(np.array([]))
        with pytest.raises(QuantizationError):
            blockwise_quantize(np.ones(8), block_size=0)
        with pytest.raises(QuantizationError):
            blockwise_quantize(np.ones(8), scheme="fp4x")


class TestLLMInt8:
    def test_outlier_decomposition_finds_planted_columns(self, rng):
        x = rng.standard_normal((32, 64)).astype(np.float32)
        x[:, [3, 40]] *= 20.0
        dec = llm_int8_decompose(x, threshold=6.0)
        assert set([3, 40]) <= set(dec.outlier_cols.tolist())
        assert dec.outlier_fraction < 0.2

    def test_no_outliers_below_threshold(self):
        x = np.full((4, 8), 0.5, dtype=np.float32)
        dec = llm_int8_decompose(x)
        assert dec.outlier_cols.size == 0

    def test_mixed_product_more_accurate_than_naive_int8(self, rng):
        """Keeping outlier columns in FP16 must beat quantizing them."""
        w = (rng.standard_normal((64, 128)) * 0.02).astype(np.float32)
        x = rng.standard_normal((16, 128)).astype(np.float32)
        x[:, :4] *= 25.0  # systematic outliers
        layer = LLMInt8Linear(w)
        err_mixed = layer.relative_error(x)

        # Naive: quantize everything including outliers.
        xq, xs = absmax_quantize_int8(x, axis=1)
        wq, ws = absmax_quantize_int8(w, axis=1)
        naive = (xq.astype(np.int32) @ wq.astype(np.int32).T).astype(np.float32) * xs * ws.T
        ref = layer.exact(x)
        err_naive = np.linalg.norm(naive - ref) / np.linalg.norm(ref)
        assert err_mixed < err_naive

    def test_relative_error_small_for_typical_inputs(self, rng):
        w = (rng.standard_normal((128, 256)) * 0.02).astype(np.float32)
        x = rng.standard_normal((32, 256)).astype(np.float32)
        assert LLMInt8Linear(w).relative_error(x) < 0.03

    def test_forward_shape_and_validation(self, rng):
        w = rng.standard_normal((8, 16)).astype(np.float32)
        layer = LLMInt8Linear(w)
        y = layer.forward(rng.standard_normal((3, 16)).astype(np.float32))
        assert y.shape == (3, 8)
        with pytest.raises(QuantizationError):
            layer.forward(rng.standard_normal((3, 5)))
        with pytest.raises(QuantizationError):
            LLMInt8Linear(np.ones(4))
        with pytest.raises(QuantizationError):
            llm_int8_decompose(np.ones((2, 2)), threshold=0.0)


class TestInt8BlasAccumulation:
    """The float64-GEMM INT8 accumulate must equal int32 bit-for-bit."""

    def test_float64_gemm_equals_int32_accumulator(self, rng):
        for rows, inner, cols in [(7, 64, 5), (32, 2560, 16), (3, 8192, 2)]:
            aq = rng.integers(-127, 128, size=(rows, inner), dtype=np.int8)
            wq = rng.integers(-127, 128, size=(cols, inner), dtype=np.int8)
            via_f64 = aq.astype(np.float64) @ wq.astype(np.float64).T
            via_i32 = aq.astype(np.int32) @ wq.astype(np.int32).T
            assert via_f64.dtype == np.float64
            assert np.array_equal(via_f64, via_i32.astype(np.float64))

    def test_worst_case_magnitudes_stay_exact(self):
        # All-|127| inputs maximize every partial product; the sum
        # 127*127*inner is still far below 2^53, so float64 stays exact.
        inner = 65536
        aq = np.full((2, inner), 127, dtype=np.int8)
        wq = np.full((3, inner), -127, dtype=np.int8)
        via_f64 = aq.astype(np.float64) @ wq.astype(np.float64).T
        expected = float(127 * -127 * inner)
        assert np.all(via_f64 == expected)
        assert via_f64[0, 0] == np.int64(127) * -127 * inner
