"""Fluid-vs-DES cross-validation: spec checks and a small tier-1 grid."""

import pytest

from repro.errors import ConfigError
from repro.plan import (ValidationSpec, run_validation,
                        validation_rows_csv)


def tiny_spec(**kw):
    base = dict(workloads=("poisson-low",), routers=("round-robin",),
                runtimes=("hf-transformers",), n_requests=24)
    base.update(kw)
    return ValidationSpec(**base)


class TestSpec:
    def test_unknown_workload_is_typed_error_listing_names(self):
        with pytest.raises(ConfigError) as exc:
            tiny_spec(workloads=("rushhour",))
        assert "rushhour" in str(exc.value)
        assert "poisson-low" in str(exc.value)

    def test_unknown_router_and_runtime_are_typed(self):
        with pytest.raises(ConfigError):
            tiny_spec(routers=("chaotic",))
        with pytest.raises(ConfigError):
            tiny_spec(runtimes=("vllm",))

    def test_empty_axes_and_bad_tolerance_rejected(self):
        with pytest.raises(ConfigError):
            tiny_spec(workloads=())
        with pytest.raises(ConfigError):
            tiny_spec(tolerance=0.0)
        with pytest.raises(ConfigError):
            tiny_spec(n_requests=0)

    def test_cache_key_folds_plan_version(self):
        from repro.plan import spec as spec_mod
        base = tiny_spec().cache_key()
        assert tiny_spec(seed=1).cache_key() != base
        old = spec_mod.PLAN_VERSION
        spec_mod.PLAN_VERSION = old + 1
        try:
            assert tiny_spec().cache_key() != base
        finally:
            spec_mod.PLAN_VERSION = old


class TestSmallGrid:
    """ODE-vs-DES agreement on a cheap grid (the full one is committed
    under ``benchmarks/results/plan_validation.csv``)."""

    @pytest.fixture(scope="class")
    def report(self):
        return run_validation(tiny_spec(
            runtimes=("hf-transformers", "paged")))

    def test_both_tiers_agree_within_tolerance(self, report):
        assert report.rows
        for row in report.rows:
            assert row["within_tol"], row
        assert report.within_fraction == 1.0

    def test_rows_carry_both_tiers_numbers(self, report):
        row = report.rows[0]
        for col in ("des_tput_tok_s", "fluid_tput_tok_s", "tput_rel_err",
                    "des_latency_s", "fluid_latency_s", "latency_rel_err"):
            assert col in row

    def test_csv_is_bit_reproducible(self, report):
        again = run_validation(tiny_spec(
            runtimes=("hf-transformers", "paged")))
        assert validation_rows_csv(report) == validation_rows_csv(again)
        assert validation_rows_csv(report).endswith("\n")
