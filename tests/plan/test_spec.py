"""PlanSpec validation, cache keys, and the capacity search."""

import time

import pytest

from repro.errors import (ConfigError, ModelError, PowerModeError,
                          QuantizationError, ReproError)
from repro.plan import PLAN_VERSION, PlanSpec, plan


class TestValidation:
    def test_unknown_model_is_typed_error_listing_names(self):
        with pytest.raises(ModelError) as exc:
            PlanSpec(model="gpt5")
        assert "gpt5" in str(exc.value)
        assert "llama3.1-8b" in str(exc.value)

    def test_unknown_device_lists_known_devices(self):
        with pytest.raises(ConfigError) as exc:
            PlanSpec(device="raspberry-pi")
        assert "raspberry-pi" in str(exc.value)
        assert "jetson-orin-agx-64gb" in str(exc.value)

    def test_unknown_runtime_lists_known_backends(self):
        with pytest.raises(ConfigError) as exc:
            PlanSpec(runtimes=("vllm",))
        assert "vllm" in str(exc.value)
        for known in ("gguf", "hf-transformers", "paged"):
            assert known in str(exc.value)

    def test_unknown_precision_and_power_mode_are_typed(self):
        with pytest.raises(QuantizationError):
            PlanSpec(precisions=("fp12",))
        with pytest.raises(PowerModeError):
            PlanSpec(power_modes=("TURBO",))

    def test_empty_axes_rejected(self):
        for kw in ({"runtimes": ()}, {"precisions": ()},
                   {"power_modes": ()}):
            with pytest.raises(ConfigError):
                PlanSpec(**kw)

    @pytest.mark.parametrize("kw", [
        {"rate_per_s": 0.0}, {"rate_per_s": -1.0},
        {"input_tokens": 0}, {"output_tokens": 0},
        {"max_nodes": 0}, {"max_batch": 0},
        {"max_utilization": 0.0}, {"max_utilization": 1.5},
        {"slo_ttft_s": -1.0}, {"slo_tpot_s": 0.0}, {"slo_e2e_s": -2.0},
    ])
    def test_bad_numbers_rejected(self, kw):
        with pytest.raises(ReproError):
            PlanSpec(**kw)

    def test_disabled_slos_are_fine(self):
        spec = PlanSpec(slo_ttft_s=None, slo_tpot_s=None, slo_e2e_s=None)
        assert spec.slo_ttft_s is None


class TestCacheKey:
    def test_stable_for_equal_specs(self):
        assert PlanSpec().cache_key() == PlanSpec().cache_key()

    def test_changes_with_every_axis(self):
        base = PlanSpec().cache_key()
        assert PlanSpec(rate_per_s=3.0).cache_key() != base
        assert PlanSpec(runtimes=("paged",)).cache_key() != base
        assert PlanSpec(max_nodes=4).cache_key() != base
        assert PlanSpec(slo_ttft_s=5.0).cache_key() != base

    def test_folds_the_plan_version(self):
        from repro.plan import spec as spec_mod
        base = PlanSpec().cache_key()
        spec_mod.PLAN_VERSION = PLAN_VERSION + 1
        try:
            assert PlanSpec().cache_key() != base
        finally:
            spec_mod.PLAN_VERSION = PLAN_VERSION


class TestPlanSearch:
    def test_answers_well_under_a_second(self):
        start = time.perf_counter()
        report = plan(PlanSpec())
        elapsed = time.perf_counter() - start
        assert elapsed < 1.0
        assert report.rows

    def test_rows_cover_the_candidate_grid_in_order(self):
        spec = PlanSpec(runtimes=("hf-transformers", "gguf"),
                        power_modes=("MAXN", "C"))
        report = plan(spec)
        assert [(r["runtime"], r["power_mode"]) for r in report.rows] == [
            ("hf-transformers", "MAXN"), ("hf-transformers", "C"),
            ("gguf", "MAXN"), ("gguf", "C")]

    def test_chosen_is_the_cheapest_feasible_row(self):
        report = plan(PlanSpec())
        assert report.chosen is not None
        assert report.chosen["slo_ok"]
        winners = [r for r in report.rows if r["slo_ok"]]
        assert report.chosen["nodes"] == min(r["nodes"] for r in winners)

    def test_impossible_slo_yields_no_choice(self):
        report = plan(PlanSpec(slo_ttft_s=0.001, max_nodes=2))
        assert report.chosen is None
        assert all(not r["slo_ok"] for r in report.rows)

    def test_oversized_model_is_reported_infeasible(self):
        report = plan(PlanSpec(model="deepq", runtimes=("hf-transformers",),
                               max_nodes=2))
        row = report.rows[0]
        assert not row["slo_ok"]
        assert not row["stable"]
        assert report.chosen is None

    def test_table_renders_all_rows(self):
        report = plan(PlanSpec(runtimes=("hf-transformers",)))
        text = report.table()
        assert "runtime" in text.splitlines()[0]
        assert len(text.splitlines()) == 1 + len(report.rows)
