"""The fluid model: steady-state fixed point and trace integration."""

import math

import pytest

from repro.errors import ConfigError
from repro.plan import ServiceRates, integrate, steady_state


@pytest.fixture(scope="module")
def rates():
    return ServiceRates("llama3.1-8b", "fp16", "hf-transformers")


class TestSteadyState:
    def test_light_load_is_stable_with_low_utilization(self, rates):
        est = steady_state(rates, 0.05, 64, 64)
        assert est.stable
        assert est.utilization < 0.5
        assert est.throughput_tok_s == pytest.approx(0.05 * 64)

    def test_overload_is_flagged_unstable(self, rates):
        est = steady_state(rates, 2.0, 64, 64)
        assert not est.stable
        assert est.ttft_s == math.inf
        assert est.latency_s == math.inf
        # the capacity ceiling is still reported so the planner can
        # explain *why* the cell lost
        assert est.capacity_tok_s > 0

    def test_more_nodes_add_capacity(self, rates):
        one = steady_state(rates, 0.5, 64, 64, nodes=1)
        four = steady_state(rates, 0.5, 64, 64, nodes=4)
        assert four.capacity_tok_s > one.capacity_tok_s
        assert four.utilization < one.utilization

    def test_latency_decomposes_into_ttft_plus_decode(self, rates):
        est = steady_state(rates, 0.2, 64, 64)
        assert est.latency_s == pytest.approx(
            est.ttft_s + 63 * est.tpot_s)

    def test_kv_occupancy_stays_inside_budget(self, rates):
        est = steady_state(rates, 0.5, 64, 64)
        assert 0 < est.kv_tokens <= est.kv_capacity_tokens

    def test_validation(self, rates):
        with pytest.raises(ConfigError):
            steady_state(rates, 0.0, 64, 64)
        with pytest.raises(ConfigError):
            steady_state(rates, 1.0, 0, 64)
        with pytest.raises(ConfigError):
            steady_state(rates, 1.0, 64, 64, nodes=0)

    def test_oversized_model_is_infeasible(self):
        heavy = ServiceRates("deepq", "fp16", "hf-transformers")
        est = steady_state(heavy, 0.1, 8, 8)
        assert not est.stable
        assert est.throughput_tok_s == 0.0


class TestIntegrate:
    def test_conserves_work(self, rates):
        """Every arrival's L_out tokens come out of the integrator."""
        arrivals = [0.5 * k for k in range(20)]
        est = integrate(rates, arrivals, 64, 64)
        assert est.stable
        total = est.throughput_tok_s * est.makespan_s
        assert total == pytest.approx(20 * 64, rel=0.01)

    def test_single_request_latency_matches_serial_cost(self, rates):
        est = integrate(rates, [0.0], 64, 64)
        p = rates.prefill_cost(64).seconds
        d = rates.decode_cost(1, 64 + 32).seconds
        assert est.latency_s == pytest.approx(p + 64 * d, rel=0.15)

    def test_fleet_split_speeds_up_the_trace(self, rates):
        arrivals = [0.1 * k for k in range(30)]
        one = integrate(rates, arrivals, 64, 64, nodes=1)
        two = integrate(rates, arrivals, 64, 64, nodes=2)
        assert two.makespan_s < one.makespan_s
        assert two.latency_s < one.latency_s

    def test_validation(self, rates):
        with pytest.raises(ConfigError):
            integrate(rates, [], 64, 64)
        with pytest.raises(ConfigError):
            integrate(rates, [0.0], 64, 64, nodes=0)
