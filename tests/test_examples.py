"""Every example script must stay runnable end to end.

The heavyweight full-paper scripts are exercised in quick mode via
their module-level entry points where available; the rest run as-is in
a subprocess.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"

FAST_SCRIPTS = [
    "quickstart.py",
    "live_generation.py",
    "serving_comparison.py",
    "backend_comparison.py",
]


@pytest.mark.parametrize("script", FAST_SCRIPTS)
def test_example_runs_clean(script):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True, text=True, timeout=600,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "example produced no output"


def test_power_mode_tuning_reports_all_modes():
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / "power_mode_tuning.py"), "phi2"],
        capture_output=True, text=True, timeout=600,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    for mode in ("MAXN", "A", "H"):
        assert mode in proc.stdout
    assert "recommendations" in proc.stdout


def test_quantization_planner_handles_oversized_model():
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / "quantization_planner.py"), "deepq"],
        capture_output=True, text=True, timeout=600,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert "OOM" in proc.stdout  # fp32/fp16 rows cannot fit
