"""DES resources, stores and trace buffers."""

import pytest

from repro.errors import SimulationError
from repro.sim import Environment, Resource, Store, Trace


def test_resource_grants_up_to_capacity_then_queues():
    env = Environment()
    res = Resource(env, capacity=2)
    log = []

    def worker(tag, hold):
        req = res.request()
        yield req
        log.append((tag, "in", env.now))
        yield env.timeout(hold)
        res.release(req)
        log.append((tag, "out", env.now))

    env.process(worker("a", 5.0))
    env.process(worker("b", 5.0))
    env.process(worker("c", 1.0))
    env.run()
    # c waits for a slot until t=5.
    assert ("c", "in", 5.0) in log
    assert ("c", "out", 6.0) in log


def test_resource_fifo_ordering():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def worker(tag):
        req = res.request()
        yield req
        order.append(tag)
        yield env.timeout(1.0)
        res.release(req)

    for tag in "abcd":
        env.process(worker(tag))
    env.run()
    assert order == list("abcd")


def test_release_of_unheld_request_is_error():
    env = Environment()
    res = Resource(env, capacity=1)
    r1 = res.request()
    res.release(r1)
    with pytest.raises(SimulationError):
        res.release(r1)


def test_resource_counts():
    env = Environment()
    res = Resource(env, capacity=1)
    r1 = res.request()
    res.request()
    assert res.count == 1
    assert res.queue_len == 1
    res.release(r1)
    assert res.queue_len == 0


def test_capacity_must_be_positive():
    env = Environment()
    with pytest.raises(SimulationError):
        Resource(env, capacity=0)
    with pytest.raises(SimulationError):
        Store(env, capacity=0)


def test_store_fifo_put_get():
    env = Environment()
    store = Store(env)
    got = []

    def producer():
        for i in range(3):
            yield env.timeout(1.0)
            yield store.put(i)

    def consumer():
        for _ in range(3):
            item = yield store.get()
            got.append((item, env.now))

    env.process(producer())
    env.process(consumer())
    env.run()
    assert got == [(0, 1.0), (1, 2.0), (2, 3.0)]


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)
    got = []

    def consumer():
        got.append((yield store.get()))

    env.process(consumer())

    def producer():
        yield env.timeout(4.0)
        yield store.put("late")

    env.process(producer())
    env.run()
    assert got == ["late"]
    assert env.now == pytest.approx(4.0)


def test_bounded_store_blocks_putter():
    env = Environment()
    store = Store(env, capacity=1)
    log = []

    def producer():
        yield store.put("x")
        log.append(("put-x", env.now))
        yield store.put("y")
        log.append(("put-y", env.now))

    def consumer():
        yield env.timeout(3.0)
        item = yield store.get()
        log.append(("got", item, env.now))

    env.process(producer())
    env.process(consumer())
    env.run()
    assert ("put-x", 0.0) in log
    assert ("put-y", 3.0) in log  # unblocked when consumer drains


def test_trace_filtering_and_order():
    tr = Trace()
    tr.record(0.0, "a", v=1)
    tr.record(1.0, "b", v=2)
    tr.record(2.0, "a", v=3)
    assert len(tr) == 3
    assert [r.data["v"] for r in tr.by_kind("a")] == [1, 3]
    assert tr.kinds() == ["a", "b"]
    tr.clear()
    assert len(tr) == 0
