"""Property-based tests of DES invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment


@given(delays=st.lists(st.floats(min_value=0.0, max_value=1e6,
                                 allow_nan=False), min_size=1, max_size=40))
@settings(max_examples=60)
def test_completion_times_are_sorted_regardless_of_creation_order(delays):
    """Events complete in timestamp order for arbitrary delay sets."""
    env = Environment()
    completions = []

    def proc(d):
        yield env.timeout(d)
        completions.append(env.now)

    for d in delays:
        env.process(proc(d))
    env.run()
    assert completions == sorted(completions)
    assert env.now == max(delays)


@given(delays=st.lists(st.floats(min_value=0.0, max_value=1e3,
                                 allow_nan=False), min_size=1, max_size=20))
@settings(max_examples=40)
def test_sequential_process_time_is_sum_of_delays(delays):
    env = Environment()

    def proc():
        for d in delays:
            yield env.timeout(d)
        return env.now

    p = env.process(proc())
    total = env.run(until=p)
    assert abs(total - sum(delays)) <= 1e-6 * max(1.0, sum(delays))


@given(n=st.integers(min_value=1, max_value=50))
@settings(max_examples=30)
def test_determinism_same_seed_same_schedule(n):
    """Two identical simulations produce identical event orders."""

    def run_once():
        env = Environment()
        order = []

        def proc(tag, d):
            yield env.timeout(d)
            order.append(tag)

        for i in range(n):
            env.process(proc(i, (i * 7919) % 13))
        env.run()
        return order

    assert run_once() == run_once()
