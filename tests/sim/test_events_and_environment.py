"""DES kernel: events, timeouts, processes, conditions."""

import pytest

from repro.errors import SimulationError
from repro.sim import AllOf, AnyOf, Environment, Event, Interrupt, Timeout


def test_timeout_advances_clock():
    env = Environment()

    def proc():
        yield env.timeout(5.0)

    env.process(proc())
    env.run()
    assert env.now == pytest.approx(5.0)


def test_events_fire_in_timestamp_order():
    env = Environment()
    order = []

    def proc(delay, tag):
        yield env.timeout(delay)
        order.append(tag)

    env.process(proc(3.0, "c"))
    env.process(proc(1.0, "a"))
    env.process(proc(2.0, "b"))
    env.run()
    assert order == ["a", "b", "c"]


def test_ties_break_by_creation_order():
    env = Environment()
    order = []

    def proc(tag):
        yield env.timeout(1.0)
        order.append(tag)

    for tag in ("x", "y", "z"):
        env.process(proc(tag))
    env.run()
    assert order == ["x", "y", "z"]


def test_process_return_value_via_run_until():
    env = Environment()

    def proc():
        yield env.timeout(2.0)
        return 42

    p = env.process(proc())
    assert env.run(until=p) == 42


def test_yield_from_subprocess_composition():
    env = Environment()

    def inner():
        yield env.timeout(1.0)
        return "inner-done"

    def outer():
        val = yield from inner()
        yield env.timeout(1.0)
        return val + "/outer-done"

    p = env.process(outer())
    assert env.run(until=p) == "inner-done/outer-done"
    assert env.now == pytest.approx(2.0)


def test_event_succeed_delivers_value():
    env = Environment()
    ev = env.event()
    got = []

    def waiter():
        got.append((yield ev))

    env.process(waiter())

    def trigger():
        yield env.timeout(1.0)
        ev.succeed("payload")

    env.process(trigger())
    env.run()
    assert got == ["payload"]


def test_event_fail_raises_in_waiter():
    env = Environment()
    ev = env.event()

    def waiter():
        with pytest.raises(ValueError, match="boom"):
            yield ev
        return "handled"

    p = env.process(waiter())
    ev.fail(ValueError("boom"))
    assert env.run(until=p) == "handled"


def test_failed_process_propagates_through_run_until():
    env = Environment()

    def bad():
        yield env.timeout(1.0)
        raise RuntimeError("exploded")

    p = env.process(bad())
    with pytest.raises(RuntimeError, match="exploded"):
        env.run(until=p)


def test_double_trigger_rejected():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        Timeout(env, -1.0)


def test_run_until_time_advances_clock_even_when_idle():
    env = Environment()
    env.run(until=100.0)
    assert env.now == pytest.approx(100.0)


def test_allof_collects_all_values():
    env = Environment()
    t1, t2 = env.timeout(1.0, "a"), env.timeout(2.0, "b")
    cond = AllOf(env, [t1, t2])
    results = []

    def waiter():
        results.append((yield cond))

    env.process(waiter())
    env.run()
    assert results == [{0: "a", 1: "b"}]
    assert env.now == pytest.approx(2.0)


def test_anyof_fires_on_first():
    env = Environment()
    t1, t2 = env.timeout(5.0, "slow"), env.timeout(1.0, "fast")
    cond = AnyOf(env, [t1, t2])
    results = []

    def waiter():
        results.append((yield cond))

    env.process(waiter())
    env.run(until=1.5)
    assert results == [{1: "fast"}]


def test_empty_allof_fires_immediately():
    env = Environment()
    cond = AllOf(env, [])
    assert cond.triggered


def test_interrupt_is_catchable_and_process_continues():
    env = Environment()
    log = []

    def sleeper():
        try:
            yield env.timeout(100.0)
        except Interrupt as exc:
            log.append(("interrupted", exc.cause, env.now))
        yield env.timeout(1.0)
        log.append(("resumed", env.now))

    p = env.process(sleeper())

    def interrupter():
        yield env.timeout(2.0)
        p.interrupt(cause="hurry")

    env.process(interrupter())
    env.run()
    assert log == [("interrupted", "hurry", 2.0), ("resumed", 3.0)]


def test_uncaught_interrupt_fails_process():
    env = Environment()

    def sleeper():
        yield env.timeout(100.0)

    p = env.process(sleeper())

    def interrupter():
        yield env.timeout(1.0)
        p.interrupt()

    env.process(interrupter())
    with pytest.raises(Interrupt):
        env.run(until=p)


def test_yield_non_event_is_an_error():
    env = Environment()

    def bad():
        yield 42

    env.process(bad())
    with pytest.raises(SimulationError):
        env.run()


def test_step_on_empty_heap_is_an_error():
    env = Environment()
    with pytest.raises(SimulationError):
        env.step()


def test_peek_reports_next_event_time():
    env = Environment()
    assert env.peek() == float("inf")
    env.timeout(7.0)
    assert env.peek() == pytest.approx(7.0)


# -- absolute timeouts and equal-time ordering -------------------------------
#
# Every scheduling path (timeout, timeout_at, schedule, schedule_at,
# succeed/fail) must draw its tie-break counter from the same
# itertools.count, so events landing on the same timestamp fire in
# exactly the order they were scheduled — regardless of which API
# scheduled them.  The decode fast-forward depends on this: a sampler
# tick and a collapsed-decode timeout at the same instant must fire in
# schedule order, as their step-by-step counterparts would.


def test_timeout_at_advances_clock_to_absolute_time():
    env = Environment()

    def proc():
        yield env.timeout(2.0)
        yield env.timeout_at(7.0, value="x")

    env.process(proc())
    env.run()
    assert env.now == 7.0


def test_timeout_at_delivers_value():
    env = Environment()
    got = []

    def proc():
        got.append((yield env.timeout_at(1.5, value="payload")))

    env.process(proc())
    env.run()
    assert got == ["payload"]


def test_timeout_at_in_the_past_rejected():
    env = Environment()
    env.run(until=5.0)
    with pytest.raises(SimulationError):
        env.timeout_at(4.0)


def test_equal_time_relative_vs_absolute_fires_in_schedule_order():
    env = Environment()
    order = []

    def rel(tag):
        yield env.timeout(3.0)
        order.append(tag)

    def abs_(tag):
        yield env.timeout_at(3.0, value=None)
        order.append(tag)

    env.process(rel("rel-first"))
    env.process(abs_("abs-second"))
    env.process(rel("rel-third"))
    env.run()
    assert order == ["rel-first", "abs-second", "rel-third"]


def test_equal_time_ordering_survives_interleaved_apis():
    env = Environment()
    order = []

    def waiter(ev, tag):
        yield ev
        order.append(tag)

    def watch(ev, tag):
        ev.callbacks.append(lambda _e: order.append(tag))
        return ev

    # Interleave the four scheduling surfaces, all at t=2.0.
    env.process(waiter(env.timeout_at(2.0), "at-a"))
    env.process(waiter(env.timeout(2.0), "rel-b"))
    env.process(waiter(env.timeout_at(2.0), "at-c"))
    ev = Event(env)
    ev._value = None  # pre-assign: bare events fire with their value
    env.schedule_at(ev, 2.0)
    watch(ev, "sched-d")
    ev2 = Event(env)
    ev2._value = None
    env.schedule(ev2, 2.0)
    watch(ev2, "sched-e")
    env.run()
    assert order == ["at-a", "rel-b", "at-c", "sched-d", "sched-e"]


def test_schedule_at_rejects_double_schedule_and_past():
    env = Environment()
    ev = Event(env)
    env.schedule_at(ev, 1.0)
    with pytest.raises(SimulationError):
        env.schedule_at(ev, 2.0)

    env2 = Environment()
    env2.run(until=5.0)
    with pytest.raises(SimulationError):
        env2.schedule_at(Event(env2), 3.0)
