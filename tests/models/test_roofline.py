"""Roofline analytics."""

import pytest

from repro.models import get_model
from repro.models.roofline import (
    batch_size_to_saturate,
    decode_roofline,
    prefill_roofline,
    roofline_sweep,
)
from repro.quant.dtypes import Precision


class TestDecodeRoofline:
    def test_small_batch_decode_is_memory_bound(self, orin):
        """The paper's central mechanism ([11], §3.2)."""
        for model in ("phi2", "llama", "mistral"):
            pt = decode_roofline(get_model(model), orin, Precision.FP16, 1, 64)
            assert pt.bound == "memory"
            assert pt.intensity_ratio < 0.1  # deeply memory-bound

    def test_intensity_grows_with_batch(self, orin):
        pts = roofline_sweep(get_model("llama"), orin, Precision.FP16)
        intensities = [p.arithmetic_intensity for p in pts]
        assert intensities == sorted(intensities)

    def test_attainable_throughput_saturates(self, orin):
        """Tokens/s grow ~linearly while memory-bound, then flatten."""
        pts = roofline_sweep(get_model("llama"), orin, Precision.FP16,
                             batch_sizes=(1, 2, 4, 512, 1024))
        tps = [p.attainable_tokens_per_s for p in pts]
        small_gain = tps[1] / tps[0]
        big_gain = tps[4] / tps[3]
        assert small_gain > 1.9  # near-linear at the start
        assert big_gain < 1.3    # saturated at the end

    def test_saturation_batch_is_reasonable_for_orin(self, orin):
        bs = batch_size_to_saturate(get_model("llama"), orin, Precision.FP16)
        assert 32 <= bs <= 1024

    def test_a100_needs_bigger_batches_to_saturate(self, orin, a100):
        small = batch_size_to_saturate(get_model("llama"), orin, Precision.FP16)
        big = batch_size_to_saturate(get_model("llama"), a100, Precision.FP16)
        assert big > small  # higher balance point on the datacenter part

    def test_long_context_lowers_intensity(self, orin):
        short = decode_roofline(get_model("llama"), orin, Precision.FP16, 32, 64)
        long = decode_roofline(get_model("llama"), orin, Precision.FP16, 32, 2048)
        assert long.arithmetic_intensity < short.arithmetic_intensity


class TestPrefillRoofline:
    def test_prefill_is_compute_bound_at_modest_prompts(self, orin):
        pt = prefill_roofline(get_model("llama"), orin, Precision.FP16, 32, 256)
        assert pt.bound == "compute"

    def test_prefill_vs_decode_split(self, orin):
        """The Splitwise observation: the two phases sit on opposite
        sides of the balance point."""
        arch = get_model("mistral")
        pre = prefill_roofline(arch, orin, Precision.FP16, 32, 256)
        dec = decode_roofline(arch, orin, Precision.FP16, 32, 256)
        assert pre.arithmetic_intensity > pre.device_balance
        assert dec.arithmetic_intensity < dec.device_balance
