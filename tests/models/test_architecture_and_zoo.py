"""Architecture descriptions, parameter accounting and the model zoo."""

import pytest

from repro.errors import ModelError
from repro.models import (
    PAPER_MODELS,
    deepseek_r1_qwen_32b,
    get_model,
    list_models,
    llama31_8b,
    mistral_small_24b,
    phi2,
)
from repro.models.architecture import TransformerArchitecture


class TestParamCounts:
    """Parameter counts must match the published model cards."""

    def test_phi2_params(self):
        assert phi2().n_params_billions == pytest.approx(2.78, abs=0.05)

    def test_llama31_params(self):
        assert llama31_8b().n_params_billions == pytest.approx(8.03, abs=0.08)

    def test_mistral_params(self):
        assert mistral_small_24b().n_params_billions == pytest.approx(23.6, abs=0.3)

    def test_deepseek_params(self):
        assert deepseek_r1_qwen_32b().n_params_billions == pytest.approx(32.8, abs=0.4)

    def test_breakdown_sums_to_total(self):
        for arch in PAPER_MODELS.values():
            pb = arch.param_breakdown()
            assert pb.total == (pb.embedding + pb.lm_head + pb.linear
                                + pb.norm + pb.bias)
            assert pb.non_linear == pb.total - pb.linear
            assert pb.linear > 0.8 * pb.total  # linears dominate LLMs

    def test_untied_models_have_lm_head(self):
        for arch in PAPER_MODELS.values():
            pb = arch.param_breakdown()
            assert pb.lm_head == pb.embedding


class TestDerivedShapes:
    def test_gqa_ratios(self):
        assert phi2().gqa_ratio == 1  # MHA
        assert llama31_8b().gqa_ratio == 4
        assert mistral_small_24b().gqa_ratio == 4
        assert deepseek_r1_qwen_32b().gqa_ratio == 5

    def test_kv_cache_spec_geometry(self):
        spec = llama31_8b().kv_cache_spec()
        assert spec.n_layers == 32
        assert spec.kv_heads == 8
        assert spec.bytes_per_token_per_layer == 2 * 8 * 128 * 2

    def test_kernels_per_step_scales_with_layers(self):
        assert deepseek_r1_qwen_32b().kernels_per_step > llama31_8b().kernels_per_step

    def test_attention_impls(self):
        assert phi2().attention_impl == "eager"
        assert llama31_8b().attention_impl == "sdpa"


class TestValidation:
    def test_heads_must_divide(self):
        with pytest.raises(ModelError, match="multiple"):
            TransformerArchitecture(
                name="bad", hf_id="x", vocab_size=100, hidden_size=64,
                n_layers=1, n_heads=5, n_kv_heads=2, head_dim=8,
                intermediate_size=128,
            )

    def test_positive_dimensions(self):
        with pytest.raises(ModelError):
            TransformerArchitecture(
                name="bad", hf_id="x", vocab_size=0, hidden_size=64,
                n_layers=1, n_heads=2, n_kv_heads=2, head_dim=8,
                intermediate_size=128,
            )

    def test_partial_rotary_range(self):
        with pytest.raises(ModelError):
            TransformerArchitecture(
                name="bad", hf_id="x", vocab_size=10, hidden_size=64,
                n_layers=1, n_heads=2, n_kv_heads=2, head_dim=8,
                intermediate_size=128, partial_rotary_factor=1.5,
            )


class TestZoo:
    def test_paper_models_in_order(self):
        assert list(PAPER_MODELS) == ["MS-Phi2", "Llama3", "Mistral-Base",
                                      "Deepseek-Qwen"]

    def test_aliases_resolve(self):
        assert get_model("llama").name == "Llama3"
        assert get_model("DeepQ").name == "Deepseek-Qwen"
        assert get_model("phi-2").name == "MS-Phi2"
        assert get_model("MISTRAL").name == "Mistral-Base"

    def test_unknown_model_rejected(self):
        with pytest.raises(ModelError, match="unknown model"):
            get_model("gpt-5")

    def test_list_models_covers_comparators(self):
        names = list_models()
        assert "Pythia-1.4B" in names and "Pythia-410M" in names
