"""FLOPs/byte analytics and the Table-1 footprints."""

import pytest

from repro.calibration import paperdata
from repro.errors import ModelError
from repro.models import (
    PAPER_MODELS,
    decode_step_counts,
    footprint_table,
    get_model,
    prefill_counts,
    weight_bytes,
)
from repro.models.footprint import weight_gb
from repro.quant.dtypes import Precision


class TestFootprint:
    @pytest.mark.parametrize("model", list(paperdata.TABLE1_FOOTPRINT))
    @pytest.mark.parametrize("prec", ["fp32", "fp16", "int8", "int4"])
    def test_matches_paper_table1_within_5pct(self, model, prec):
        paper_gb = paperdata.TABLE1_FOOTPRINT[model][prec]
        ours = weight_gb(PAPER_MODELS[model], Precision.parse(prec))
        # The paper's red 'estimate' cells (Deepseek FP32/FP16) were
        # extrapolated by the authors and deviate a little more.
        tol = 0.06 if model != "Deepseek-Qwen" or prec in ("int8", "int4") else 0.08
        assert ours == pytest.approx(paper_gb, rel=tol)

    def test_precision_ordering(self):
        arch = get_model("llama")
        sizes = [weight_bytes(arch, p) for p in
                 (Precision.FP32, Precision.FP16, Precision.INT8, Precision.INT4)]
        assert sizes == sorted(sizes, reverse=True)

    def test_footprint_table_shape(self):
        rows = footprint_table(PAPER_MODELS.values())
        assert len(rows) == 4
        assert {"model", "params_b", "fp32_gb", "int4_gb"} <= set(rows[0])


class TestPhaseCounts:
    def test_decode_flops_scale_with_batch(self):
        arch = get_model("llama")
        w = weight_bytes(arch, Precision.FP16)
        c1 = decode_step_counts(arch, 1, 64, w)
        c32 = decode_step_counts(arch, 32, 64, w)
        assert c32.flops == pytest.approx(32 * c1.flops, rel=1e-6)
        # Weights are read once regardless of batch size.
        assert c32.weight_bytes_read == c1.weight_bytes_read

    def test_decode_kv_read_scales_with_context(self):
        arch = get_model("llama")
        w = weight_bytes(arch, Precision.FP16)
        c = decode_step_counts(arch, 8, 100, w)
        c2 = decode_step_counts(arch, 8, 200, w)
        assert c2.kv_bytes_read == pytest.approx(2 * c.kv_bytes_read)

    def test_gqa_expansion_traffic(self):
        llama = get_model("llama")  # gqa 4
        phi = get_model("phi2")  # MHA
        w = weight_bytes(llama, Precision.FP16)
        c = decode_step_counts(llama, 8, 128, w)
        assert c.kv_expand_bytes == pytest.approx(2 * 3 * c.kv_bytes_read)
        cp = decode_step_counts(phi, 8, 128, weight_bytes(phi, Precision.FP16))
        assert cp.kv_expand_bytes == 0.0

    def test_prefill_flops_scale_with_prompt_tokens(self):
        arch = get_model("phi2")
        w = weight_bytes(arch, Precision.FP16)
        c32 = prefill_counts(arch, 4, 32, w)
        c64 = prefill_counts(arch, 4, 64, w)
        assert c64.flops > 1.9 * c32.flops  # superlinear (attention term)

    def test_decode_flops_are_roughly_2P_per_token(self):
        arch = get_model("llama")
        w = weight_bytes(arch, Precision.FP16)
        c = decode_step_counts(arch, 1, 1, w)
        assert c.flops == pytest.approx(2 * arch.n_params, rel=0.15)

    def test_validation(self):
        arch = get_model("llama")
        with pytest.raises(ModelError):
            decode_step_counts(arch, 0, 64, 1e9)
        with pytest.raises(ModelError):
            prefill_counts(arch, 1, 0, 1e9)
