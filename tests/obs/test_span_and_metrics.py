"""Unit tests for the span collector and the metrics registry."""

import pytest

from repro.errors import ConfigError
from repro.obs import (
    DEFAULT_BUCKETS,
    NO_SPAN,
    NULL_OBSERVER,
    MetricsRegistry,
    Observer,
)
from repro.sim.environment import Environment


class TestSpans:
    def test_begin_end_records_closed_span(self):
        obs = Observer()
        sid = obs.begin("request", cat="request", track="req0",
                        time_s=1.0, req=0)
        obs.end(sid, time_s=3.5, outcome="ok")
        (s,) = obs.spans
        assert s.name == "request" and s.cat == "request"
        assert s.start_s == 1.0 and s.end_s == 3.5
        assert s.duration_s == pytest.approx(2.5)
        assert dict(s.args) == {"req": 0, "outcome": "ok"}
        assert s.parent_id is None

    def test_same_track_spans_nest_implicitly(self):
        obs = Observer()
        outer = obs.begin("outer", time_s=0.0)
        inner = obs.begin("inner", time_s=1.0)
        obs.end(inner, time_s=2.0)
        obs.end(outer, time_s=3.0)
        by_name = {s.name: s for s in obs.spans}
        assert by_name["inner"].parent_id == outer
        assert by_name["outer"].parent_id is None

    def test_explicit_parent_crosses_tracks(self):
        obs = Observer()
        req = obs.begin("request", track="req7", time_s=0.0)
        work = obs.begin("prefill", track="node0", parent=req, time_s=0.0)
        obs.end(work, time_s=1.0)
        obs.end(req, time_s=1.0)
        assert obs.spans[0].parent_id == req
        assert obs.spans[0].track == "node0"

    def test_complete_records_interval_without_events(self):
        obs = Observer()
        sid = obs.complete("decode", 2.0, 5.0, cat="engine", track="node0",
                           tokens=96)
        (s,) = obs.spans
        assert s.span_id == sid
        assert (s.start_s, s.end_s) == (2.0, 5.0)
        assert dict(s.args) == {"tokens": 96}

    def test_span_context_manager(self):
        obs = Observer()
        with obs.span("step", cat="engine") as ctx:
            assert ctx.span_id != NO_SPAN
        assert obs.spans[0].name == "step"

    def test_bind_reads_simulation_clock(self):
        obs = Observer()
        env = Environment()
        obs.bind(env)
        sid = obs.begin("tick")

        def proc():
            yield env.timeout(4.0)
            obs.end(sid)

        env.process(proc())
        env.run()
        (s,) = obs.spans
        assert (s.start_s, s.end_s) == (0.0, 4.0)

    def test_finish_open_closes_leftovers(self):
        obs = Observer()
        obs.begin("a", time_s=0.0)
        obs.begin("b", track="t2", time_s=1.0)
        assert obs.finish_open(time_s=9.0) == 2
        assert all(s.end_s == 9.0 for s in obs.spans)
        assert all(dict(s.args)["unfinished"] for s in obs.spans)

    def test_open_start_and_spans_named(self):
        obs = Observer()
        sid = obs.begin("queue", time_s=2.5)
        assert obs.open_start(sid) == 2.5
        obs.end(sid, time_s=3.0)
        assert obs.open_start(sid) is None
        assert [s.span_id for s in obs.spans_named("queue")] == [sid]

    def test_instants_and_counters(self):
        obs = Observer()
        obs.instant("retry", cat="cluster", track="req0", time_s=1.0,
                    attempt=2)
        obs.counter("power_w", 31.5, track="node0", time_s=0.5)
        (i,) = obs.instants
        assert i.name == "retry" and dict(i.args) == {"attempt": 2}
        (c,) = obs.counters
        assert (c.name, c.value, c.time_s) == ("power_w", 31.5, 0.5)
        assert len(obs) == 2

    def test_clear_drops_everything(self):
        obs = Observer()
        obs.begin("open")
        obs.complete("done", 0.0, 1.0)
        obs.instant("i")
        obs.counter("c", 1.0)
        obs.metrics.counter("n").inc()
        obs.clear()
        assert len(obs) == 0 and len(obs.metrics) == 0
        assert obs.finish_open() == 0


class TestDisabledObserver:
    def test_null_observer_records_nothing(self):
        obs = NULL_OBSERVER
        sid = obs.begin("x", arg=1)
        assert sid == NO_SPAN
        obs.end(sid)
        assert obs.complete("y", 0.0, 1.0) == NO_SPAN
        assert obs.instant("z") == NO_SPAN
        obs.counter("w", 1.0)
        with obs.span("ctx") as ctx:
            assert ctx.span_id == NO_SPAN
        assert len(obs) == 0
        assert obs.finish_open() == 0

    def test_end_tolerates_no_span_and_unknown_ids(self):
        obs = Observer()
        obs.end(NO_SPAN)
        obs.end(12345)
        assert obs.spans == []


class TestMetricsRegistry:
    def test_counter_accumulates_and_rejects_decrease(self):
        reg = MetricsRegistry()
        reg.counter("tokens_total", node="0").inc(64)
        reg.counter("tokens_total", node="0").inc(32)
        assert reg.counter("tokens_total", node="0").value == 96
        with pytest.raises(ConfigError):
            reg.counter("tokens_total", node="0").inc(-1)

    def test_labels_distinguish_and_order_is_canonical(self):
        reg = MetricsRegistry()
        reg.counter("x", b="2", a="1").inc()
        reg.counter("x", a="1", b="2").inc()   # same instrument
        reg.counter("x", a="9").inc()          # different instrument
        assert len(reg) == 2
        (row, _) = [r for r in reg.snapshot_rows() if r["metric"] == "x"][:2]
        assert row["labels"] == "a=1,b=2"

    def test_gauge_sets_last_value(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        g.set(4)
        g.set(2)
        assert g.value == 2.0

    def test_histogram_buckets_are_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_s", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 5.0, 50.0):
            h.observe(v)
        assert h.cumulative() == [1, 2, 3]
        assert h.count == 4 and h.sum == pytest.approx(55.55)

    def test_histogram_default_buckets_and_validation(self):
        reg = MetricsRegistry()
        assert reg.histogram("d").bounds == DEFAULT_BUCKETS
        with pytest.raises(ConfigError):
            reg.histogram("bad", buckets=(2.0, 1.0))

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("m")
        with pytest.raises(ConfigError):
            reg.gauge("m")

    def test_snapshot_rows_are_deterministic(self):
        def build():
            reg = MetricsRegistry()
            reg.counter("a", node="1").inc(3)
            reg.histogram("h", buckets=(1.0,)).observe(0.5)
            reg.gauge("g").set(7)
            return reg.snapshot_rows()

        assert build() == build()
