"""Exporter tests: golden Chrome trace, Prometheus text, CSV writers."""

import json

import pytest

from repro.obs import (
    MetricsRegistry,
    Observer,
    chrome_trace_json,
    prometheus_text,
    to_chrome_trace,
    write_chrome_trace,
    write_metrics,
    write_metrics_csv,
    write_spans_csv,
)


def _tiny_observer() -> Observer:
    """A handcrafted observer with every record type at fixed times."""
    obs = Observer()
    obs.set_group("run")
    req = obs.begin("request", cat="request", track="req0", time_s=0.0, req=0)
    obs.complete("decode", 0.25, 1.0, cat="engine", track="node0")
    obs.end(req, time_s=1.5, outcome="ok")
    obs.instant("mode_change", cat="cluster", track="node0", time_s=2.0,
                mode="A")
    obs.counter("power_w", 30.5, track="node0", time_s=0.5)
    return obs


#: The exact trace-event object the tiny observer must export to.  This
#: is the contract with Perfetto/chrome://tracing — change it knowingly.
GOLDEN = {
    "displayTimeUnit": "ms",
    "traceEvents": [
        {"ph": "M", "name": "process_name", "pid": 1,
         "args": {"name": "run"}},
        {"ph": "M", "name": "thread_name", "pid": 1, "tid": 1,
         "args": {"name": "node0"}},
        {"ph": "M", "name": "thread_name", "pid": 1, "tid": 2,
         "args": {"name": "req0"}},
        {"ph": "X", "name": "decode", "cat": "engine", "pid": 1, "tid": 1,
         "ts": 250000.0, "dur": 750000.0, "args": {"span_id": 2}},
        {"ph": "X", "name": "request", "cat": "request", "pid": 1, "tid": 2,
         "ts": 0.0, "dur": 1500000.0,
         "args": {"req": 0, "outcome": "ok", "span_id": 1}},
        {"ph": "i", "s": "t", "name": "mode_change", "cat": "cluster",
         "pid": 1, "tid": 1, "ts": 2000000.0, "args": {"mode": "A"}},
        {"ph": "C", "name": "power_w", "pid": 1, "tid": 1, "ts": 500000.0,
         "args": {"node0": 30.5}},
    ],
}


class TestChromeTrace:
    def test_golden_object(self):
        assert to_chrome_trace(_tiny_observer()) == GOLDEN

    def test_golden_bytes(self):
        expected = json.dumps(GOLDEN, sort_keys=True,
                              separators=(",", ":")) + "\n"
        assert chrome_trace_json(_tiny_observer()) == expected

    def test_written_file_round_trips(self, tmp_path):
        out = write_chrome_trace(tmp_path / "t.json", _tiny_observer())
        loaded = json.loads(out.read_text())
        assert loaded == GOLDEN
        names = [e["name"] for e in loaded["traceEvents"] if e["ph"] == "X"]
        assert names == ["decode", "request"]

    def test_empty_observer_exports_empty_trace(self):
        assert to_chrome_trace(Observer()) == {
            "displayTimeUnit": "ms", "traceEvents": []}


class TestSpanCsv:
    def test_rows_and_header(self, tmp_path):
        out = write_spans_csv(tmp_path / "spans.csv", _tiny_observer())
        lines = out.read_text().splitlines()
        assert lines[0].startswith("span_id,parent_id,group,track,name")
        assert len(lines) == 3  # header + two closed spans
        assert ",decode,engine," in lines[1]
        assert "req=0;outcome=ok" in lines[2]


def _tiny_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("requests_total", node="0").inc(3)
    reg.gauge("queue_depth").set(2)
    reg.histogram("ttft_s", buckets=(0.5, 1.0)).observe(0.75)
    return reg


class TestPrometheus:
    def test_text_exposition(self):
        text = prometheus_text(_tiny_registry())
        assert text == (
            "# TYPE requests_total counter\n"
            'requests_total{node="0"} 3\n'
            "# TYPE queue_depth gauge\n"
            "queue_depth 2\n"
            "# TYPE ttft_s histogram\n"
            'ttft_s_bucket{le="0.5"} 0\n'
            'ttft_s_bucket{le="1"} 1\n'
            'ttft_s_bucket{le="+Inf"} 1\n'
            "ttft_s_sum 0.75\n"
            "ttft_s_count 1\n"
        )

    def test_empty_registry(self):
        assert prometheus_text(MetricsRegistry()) == ""


class TestWriteMetricsDispatch:
    @pytest.mark.parametrize("name", ["m.prom", "m.txt"])
    def test_prometheus_suffixes(self, tmp_path, name):
        out = write_metrics(tmp_path / name, _tiny_registry())
        assert out.read_text().startswith("# TYPE requests_total counter")

    def test_csv_fallback(self, tmp_path):
        out = write_metrics(tmp_path / "m.csv", _tiny_registry())
        lines = out.read_text().splitlines()
        assert lines[0] == "metric,type,labels,value"
        assert "requests_total,counter,node=0,3" in lines

    def test_csv_writer_matches_dispatch(self, tmp_path):
        a = write_metrics(tmp_path / "a.csv", _tiny_registry())
        b = write_metrics_csv(tmp_path / "b.csv", _tiny_registry())
        assert a.read_text() == b.read_text()
