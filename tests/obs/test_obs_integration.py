"""End-to-end observability guarantees.

The three acceptance properties from the layer's introduction:

- determinism — two same-seed runs export byte-identical telemetry;
- attribution — engine and cluster runs produce the span hierarchy the
  latency-breakdown report folds (queue / prefill / decode / faults);
- zero cost when disabled — running without an observer records nothing
  and changes no result.
"""

import pytest

from repro.cluster import (EdgeCluster, FleetSpec, NodeSpec,
                           poisson_workload)
from repro.core import ExperimentSpec, run_experiment
from repro.faults import ChaosSpec, FaultScheduleSpec, run_chaos
from repro.obs import Observer, chrome_trace_json, kinds, prometheus_text
from repro.reporting import phase_breakdown

FLEET = [
    NodeSpec("jetson-orin-agx-64gb", max_batch=4),
    NodeSpec("jetson-xavier-agx-32gb", max_batch=4),
]


def _cluster_run(observer=None, seed=3, n=24):
    fleet = FleetSpec.of(list(FLEET), model="llama", precision="fp16")
    cluster = EdgeCluster.of(fleet, observer=observer)
    reqs = poisson_workload(2.0, n, input_tokens=16, output_tokens=16,
                            seed=seed)
    return cluster.run(reqs)


class TestClusterSpans:
    @pytest.fixture(scope="class")
    def observed(self):
        obs = Observer()
        report = _cluster_run(observer=obs)
        return obs, report

    def test_every_request_has_a_request_span(self, observed):
        obs, report = observed
        spans = obs.spans_named(kinds.REQUEST)
        assert len(spans) == report.n_requests
        assert {s.track for s in spans} == {
            f"req{r.req_id}" for r in report.requests}

    def test_queue_prefill_decode_hierarchy(self, observed):
        obs, report = observed
        req_span = {s.track: s.span_id for s in obs.spans_named(kinds.REQUEST)}
        for q in obs.spans_named(kinds.QUEUE):
            assert q.parent_id == req_span[q.track]
        assert obs.spans_named(kinds.PREFILL)
        assert obs.spans_named(kinds.DECODE)
        for s in obs.spans_named(kinds.PREFILL) + obs.spans_named(kinds.DECODE):
            assert s.track.startswith("node")
            assert s.duration_s > 0

    def test_completion_metrics_match_report(self, observed):
        obs, report = observed
        done = obs.metrics.counter("requests_completed_total")
        assert done.value == report.completed
        ttft = obs.metrics.histogram("ttft_s")
        assert ttft.count == report.completed

    def test_phase_breakdown_covers_the_run(self, observed):
        obs, _ = observed
        rows = {r["phase"]: r for r in phase_breakdown(obs)}
        assert rows[kinds.DECODE]["total_s"] > rows[kinds.PREFILL]["total_s"]
        assert rows[kinds.REQUEST]["count"] == len(
            obs.spans_named(kinds.REQUEST))
        assert sum(r["share"] for r in rows.values() if r["total_s"]) == \
            pytest.approx(1.0, abs=0.01)


class TestDeterminism:
    def test_cluster_trace_and_metrics_byte_identical(self):
        exports = []
        for _ in range(2):
            obs = Observer()
            _cluster_run(observer=obs)
            exports.append((chrome_trace_json(obs),
                            prometheus_text(obs.metrics)))
        assert exports[0] == exports[1]

    def test_engine_trace_byte_identical(self):
        spec = ExperimentSpec.for_model("phi2", batch_size=2, n_runs=1)
        exports = []
        for _ in range(2):
            obs = Observer()
            run_experiment(spec, observer=obs)
            exports.append(chrome_trace_json(obs))
        assert exports[0] == exports[1] and len(exports[0]) > 200


class TestZeroCostWhenDisabled:
    def test_cluster_report_unchanged_by_observer(self):
        plain = _cluster_run()
        obs = Observer()
        observed = _cluster_run(observer=obs)
        assert [r.__dict__ for r in observed.requests] == \
            [r.__dict__ for r in plain.requests]
        assert len(obs) > 0

    def test_engine_rows_unchanged_by_observer(self):
        spec = ExperimentSpec.for_model("phi2", batch_size=2, n_runs=1)
        obs = Observer()
        assert run_experiment(spec, observer=obs).as_row() == \
            run_experiment(spec).as_row()
        assert obs.spans_named(kinds.PREFILL)
        assert obs.spans_named(kinds.DECODE)

    def test_no_observer_records_nothing(self):
        from repro.obs import NULL_OBSERVER

        before = len(NULL_OBSERVER)
        _cluster_run()
        assert len(NULL_OBSERVER) == before == 0


#: Dense enough that several episodes of each class land *inside* the
#: ~30s serving window (sparser schedules fire after the run ends).
CHAOS = ChaosSpec(
    n_requests=60,
    faults=FaultScheduleSpec(
        horizon_s=30.0,
        crash_rate_per_min=6.0,
        brownout_rate_per_min=6.0,
        straggler_rate_per_min=6.0,
    ),
)


class TestFaultSpans:
    @pytest.fixture(scope="class")
    def chaos(self):
        obs = Observer()
        report = run_chaos(CHAOS, observer=obs)
        return obs, report

    def test_fault_episodes_become_spans(self, chaos):
        obs, report = chaos
        episode_spans = [s for s in obs.spans if s.cat == kinds.CAT_FAULT]
        names = {s.name for s in episode_spans}
        assert {kinds.fault_kind("crash"), kinds.fault_kind("brownout"),
                kinds.fault_kind("straggler")} <= names
        assert len(episode_spans) <= sum(report.n_episodes.values())
        for s in episode_spans:
            assert s.track.endswith(".faults")
            assert s.duration_s > 0

    def test_injected_counter_matches_applied_begins(self, chaos):
        obs, report = chaos
        begun = sum(1 for (_, _, _, action, applied, _)
                    in report.injected_trace if action == "begin" and applied)
        total = sum(
            inst.value for inst in obs.metrics.instruments()
            if inst.name == "faults_injected_total")
        assert total == begun > 0

    def test_chaos_trace_byte_identical(self, chaos):
        obs1, _ = chaos
        obs2 = Observer()
        run_chaos(CHAOS, observer=obs2)
        assert chrome_trace_json(obs1) == chrome_trace_json(obs2)
