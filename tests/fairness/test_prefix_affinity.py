"""Prefix-affinity routing: keep a conversation's turns on one node.

Multi-turn interactions re-send their whole history each turn; on paged
nodes the radix cache can reuse that prefix — but only if later turns
land on the node that cached it.  The ``prefix-affinity`` router probes
each node's radix tree (side-effect-free peek) and routes to the best
match, falling back to least-kv placement for cold prompts.
"""

import pytest

from repro.cluster import (EdgeCluster, FleetSpec, NodeSpec, get_router,
                           list_policies)
from repro.errors import ConfigError
from repro.fairness import session_workload


def run_sessions(policy, n=10, seed=0):
    cluster = EdgeCluster.of(FleetSpec.of(
        [NodeSpec("jetson-orin-agx-64gb", max_batch=4, runtime="paged"),
         NodeSpec("jetson-orin-agx-64gb", max_batch=4, runtime="paged")],
        policy=policy))
    inters = session_workload(2.0, n, mean_turns=4.0, max_turns=6,
                              mean_think_time_s=0.5, seed=seed)
    rep = cluster.run_interactions(inters)
    return cluster, inters, rep


class TestRegistry:
    def test_listed_and_constructible(self):
        assert "prefix-affinity" in list_policies()
        assert get_router("prefix-affinity").name == "prefix-affinity"

    def test_unknown_policy_still_typed_error(self):
        with pytest.raises(ConfigError):
            get_router("prefix-chaos")


class TestAffinity:
    def test_turns_of_one_interaction_stick_to_one_node(self):
        _, inters, _ = run_sessions("prefix-affinity")
        multi = [i for i in inters if len(i.requests) > 1]
        assert multi, "scenario must produce multi-turn interactions"
        for inter in multi:
            nodes = {r.node_id for r in inter.requests
                     if r.node_id is not None}
            assert len(nodes) == 1

    def test_round_robin_splits_interactions(self):
        """Sanity: the baseline really does scatter turns, otherwise the
        uplift assertion below would be vacuous."""
        _, inters, _ = run_sessions("round-robin")
        split = [i for i in inters if len(
            {r.node_id for r in i.requests if r.node_id is not None}) > 1]
        assert split

    def test_prefix_hit_rate_uplift_over_round_robin(self):
        _, _, affinity = run_sessions("prefix-affinity")
        _, _, baseline = run_sessions("round-robin")
        assert affinity.prefix_hit_rate > baseline.prefix_hit_rate
        assert affinity.prefix_hit_tokens > baseline.prefix_hit_tokens

    def test_reports_carry_the_policy_name(self):
        _, _, rep = run_sessions("prefix-affinity", n=4)
        assert rep.policy == "prefix-affinity"

    def test_deterministic(self):
        _, _, a = run_sessions("prefix-affinity")
        _, _, b = run_sessions("prefix-affinity")
        assert a.as_row() == b.as_row()
