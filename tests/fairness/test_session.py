"""Session model: staged turns, context growth, determinism."""

import numpy as np
import pytest

from repro.cluster.workload import (TenantProfile, multi_tenant_workload,
                                    normalized_weights)
from repro.errors import WorkloadError
from repro.fairness import Interaction, SessionTurn, session_workload


def turn(new_in=8, out=4, think=1.0, cum=8):
    return SessionTurn(new_input_tokens=new_in, output_tokens=out,
                       think_time_s=think, input_tokens=cum)


class TestInteraction:
    def test_needs_at_least_one_turn(self):
        with pytest.raises(WorkloadError):
            Interaction(interaction_id=0, tenant="a", arrival_s=0.0, turns=[])

    def test_staging_materialises_turns_in_order(self):
        inter = Interaction(0, "a", 0.0, [turn(cum=8), turn(cum=20)])
        r0 = inter.next_request(10, 0.0)
        assert (r0.req_id, r0.turn, r0.input_tokens) == (10, 0, 8)
        assert r0.interaction_id == 0 and r0.tenant == "a"
        assert inter.has_next
        r1 = inter.next_request(11, 5.0)
        assert (r1.turn, r1.input_tokens, r1.arrival_s) == (1, 20, 5.0)
        assert inter.next_request(12, 9.0) is None

    def test_completed_requires_all_turns_finished(self):
        inter = Interaction(0, "a", 0.0, [turn()])
        assert not inter.completed
        r = inter.next_request(0, 0.0)
        assert not inter.completed
        r.finish_s = 3.0
        assert inter.completed

    def test_abandoned_is_never_completed(self):
        inter = Interaction(0, "a", 0.0, [turn()])
        r = inter.next_request(0, 0.0)
        r.finish_s = 3.0
        inter.mark_abandoned()
        assert not inter.completed
        assert not inter.has_next


class TestSessionWorkload:
    def test_deterministic_under_seed(self):
        a = session_workload(2.0, 10, seed=7)
        b = session_workload(2.0, 10, seed=7)
        assert [(i.tenant, i.arrival_s, len(i.turns)) for i in a] == \
               [(i.tenant, i.arrival_s, len(i.turns)) for i in b]
        for ia, ib in zip(a, b):
            assert [t.prompt_ids for t in ia.turns] == \
                   [t.prompt_ids for t in ib.turns]

    def test_context_grows_cumulatively(self):
        for inter in session_workload(2.0, 6, seed=1):
            context = 0
            for t in inter.turns:
                assert t.input_tokens == context + t.new_input_tokens
                context += t.new_input_tokens + t.output_tokens

    def test_prompt_ids_chain_across_turns(self):
        """Turn k+1's prompt extends turn k's prompt AND its output."""
        for inter in session_workload(2.0, 6, seed=3):
            for prev, nxt in zip(inter.turns, inter.turns[1:]):
                assert len(prev.prompt_ids) == prev.input_tokens
                assert nxt.prompt_ids[:len(prev.prompt_ids)] == prev.prompt_ids
                assert len(nxt.prompt_ids) == (len(prev.prompt_ids)
                                               + prev.output_tokens
                                               + nxt.new_input_tokens)

    def test_first_turn_has_no_think_time(self):
        for inter in session_workload(2.0, 8, seed=2):
            assert inter.turns[0].think_time_s == 0.0
            for t in inter.turns[1:]:
                assert t.think_time_s >= 0.0

    def test_turn_count_respects_max(self):
        for inter in session_workload(2.0, 20, mean_turns=5.0, max_turns=3,
                                      seed=4):
            assert 1 <= len(inter.turns) <= 3

    def test_without_prompt_ids(self):
        inters = session_workload(2.0, 4, seed=5, with_prompt_ids=False)
        assert all(t.prompt_ids is None
                   for i in inters for t in i.turns)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            session_workload(0.0, 5)
        with pytest.raises(WorkloadError):
            session_workload(1.0, 0)
        with pytest.raises(WorkloadError):
            session_workload(1.0, 5, mean_turns=0.5)
        with pytest.raises(WorkloadError):
            session_workload(1.0, 5, mean_think_time_s=-1.0)


class TestWeightNormalisation:
    """The helper shared by multi_tenant_workload and session_workload."""

    def test_normalizes_to_one(self):
        tenants = (TenantProfile("a", weight=6.0),
                   TenantProfile("b", weight=2.0))
        w = normalized_weights(tenants)
        assert w == pytest.approx([0.75, 0.25])

    def test_empty_mix_is_typed_error(self):
        with pytest.raises(WorkloadError):
            normalized_weights(())

    def test_zero_weight_tenant_is_typed_error(self):
        """Regression: a weight=0 profile must raise WorkloadError, not
        produce NaN shares downstream."""
        with pytest.raises(WorkloadError):
            TenantProfile("zero", weight=0.0)

    def test_both_generators_share_the_draw(self):
        tenants = (TenantProfile("only", weight=3.0),)
        reqs = multi_tenant_workload(2.0, 5, tenants=tenants, seed=0)
        inters = session_workload(2.0, 5, tenants=tenants, seed=0)
        assert {r.tenant for r in reqs} == {"only"}
        assert {i.tenant for i in inters} == {"only"}
