"""Fair-scheduler unit behaviour: registry, FCFS, VTC, WSC."""

import pytest

from repro.cluster.workload import ClusterRequest
from repro.errors import ConfigError
from repro.fairness import (FCFSScheduler, VTCScheduler, WSCScheduler,
                            get_fair_scheduler, list_fair_schedulers)


def req(rid, tenant, inp=32, out=32):
    return ClusterRequest(req_id=rid, arrival_s=0.0, input_tokens=inp,
                          output_tokens=out, tenant=tenant)


class TestRegistry:
    def test_known_names(self):
        assert list_fair_schedulers() == ["fcfs", "vtc", "wsc"]

    def test_none_means_fcfs(self):
        assert get_fair_scheduler(None).name == "fcfs"

    def test_instance_passthrough(self):
        inst = VTCScheduler()
        assert get_fair_scheduler(inst) is inst

    def test_unknown_name_is_typed_error_listing_names(self):
        with pytest.raises(ConfigError) as exc:
            get_fair_scheduler("lottery")
        msg = str(exc.value)
        assert "lottery" in msg
        for name in list_fair_schedulers():
            assert name in msg

    def test_weights_reach_the_scheduler(self):
        s = get_fair_scheduler("vtc", {"a": 2.0, "b": 1.0})
        assert s.weight_of("a") == 2.0
        assert s.weight_of("unknown") == 1.0


class TestFCFS:
    def test_always_selects_the_head(self):
        s = FCFSScheduler()
        q = [req(0, "b"), req(1, "a"), req(2, "c")]
        for r in q:
            s.on_arrival(r, 0.0)
        s.on_tokens_served(q[0], decode_tokens=100)
        assert s.select_next(q) == 0

    def test_hooks_are_stateless(self):
        s = FCFSScheduler()
        s.on_arrival(req(0, "a"), 1.0)
        s.on_tokens_served(req(0, "a"), prefill_tokens=10, decode_tokens=5)
        s.on_flush()
        assert s.counter_snapshot() == {}


class TestVTC:
    def test_least_served_tenant_wins(self):
        s = VTCScheduler()
        a, b = req(0, "a"), req(1, "b")
        for r in (a, b):
            s.on_arrival(r, 0.0)
        s.on_tokens_served(a, decode_tokens=50)
        # a has been served; b's counter is lower, so b jumps the queue.
        assert s.select_next([a, b]) == 1

    def test_decode_tokens_weighted_heavier_than_prefill(self):
        s = VTCScheduler()
        a, b = req(0, "a"), req(1, "b")
        for r in (a, b):
            s.on_arrival(r, 0.0)
        s.on_tokens_served(a, prefill_tokens=10)
        s.on_tokens_served(b, decode_tokens=10)
        snap = s.counter_snapshot()
        assert snap["b"] == pytest.approx(2 * snap["a"])

    def test_tenant_weight_discounts_service(self):
        s = VTCScheduler(weights={"heavy": 4.0, "light": 1.0})
        h, l = req(0, "heavy"), req(1, "light")
        for r in (h, l):
            s.on_arrival(r, 0.0)
        s.on_tokens_served(h, decode_tokens=40)
        s.on_tokens_served(l, decode_tokens=40)
        snap = s.counter_snapshot()
        # Same tokens, but the heavy tenant's entitlement is 4x.
        assert snap["light"] == pytest.approx(4 * snap["heavy"])

    def test_arrival_lift_prevents_banking_idle_time(self):
        s = VTCScheduler()
        a = req(0, "a")
        s.on_arrival(a, 0.0)
        s.on_dequeue(a)
        s.on_tokens_served(a, decode_tokens=100)
        # b was idle the whole time; on arrival it lifts to the floor
        # of the live counters instead of keeping a banked credit of 0
        # it could spend starving a for the next 100 tokens.
        b = req(1, "b")
        a2 = req(2, "a")
        s.on_arrival(a2, 1.0)
        s.on_arrival(b, 1.0)
        snap = s.counter_snapshot()
        assert snap["b"] == pytest.approx(snap["a"])
        # The lift makes them tie (position breaks it), not leapfrog;
        # one more token billed to a and b goes first.
        assert s.select_next([a2, b]) == 0
        s.on_tokens_served(a2, decode_tokens=1)
        assert s.select_next([a2, b]) == 1

    def test_ties_break_by_queue_position(self):
        s = VTCScheduler()
        q = [req(0, "a"), req(1, "b")]
        for r in q:
            s.on_arrival(r, 0.0)
        assert s.select_next(q) == 0

    def test_flush_clears_backlog(self):
        s = VTCScheduler()
        s.on_arrival(req(0, "a"), 0.0)
        s.on_flush()
        assert s.select_next([req(1, "a")]) == 0


class TestWSC:
    def test_unit_token_weights(self):
        s = WSCScheduler()
        a, b = req(0, "a"), req(1, "b")
        for r in (a, b):
            s.on_arrival(r, 0.0)
        s.on_tokens_served(a, prefill_tokens=10)
        s.on_tokens_served(b, decode_tokens=10)
        snap = s.counter_snapshot()
        assert snap["a"] == pytest.approx(snap["b"])

    def test_respects_tenant_weights(self):
        s = WSCScheduler(weights={"big": 3.0, "small": 1.0})
        big, small = req(0, "big"), req(1, "small")
        for r in (big, small):
            s.on_arrival(r, 0.0)
        s.on_tokens_served(big, decode_tokens=30)
        s.on_tokens_served(small, decode_tokens=30)
        # big's 30 tokens cost 10 counter units; small's cost 30.
        assert s.select_next([small, big]) == 1
