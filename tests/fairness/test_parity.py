"""FCFS parity: the scheduler wiring must not move a single float.

The fairness refactor routed every admission decision through
``FairScheduler.select_next`` and added lifecycle hooks to the serving
loops.  With the default FCFS discipline all of that must be inert:
these tests pin bit-identical behaviour (exact float equality, byte-
identical obs traces) against a node running the verbatim pre-refactor
admission body.
"""

import types

from repro.cluster import EdgeCluster, FleetSpec, NodeSpec
from repro.cluster.workload import multi_tenant_workload
from repro.engine.scheduler import ContinuousBatchScheduler
from repro.engine.scheduler import poisson_workload as engine_poisson
from repro.hardware import get_device
from repro.models import get_model
from repro.obs import Observer, chrome_trace_json
from repro.quant.dtypes import Precision


def _legacy_admit(self):
    """The pre-scheduler ``ClusterNode._admit`` body, verbatim."""
    admitted = []
    limit = self.kv_policy.effective_budget(self.kv_budget)
    while self.queue and len(self.active) < self.max_batch:
        need = self._kv_need(self.queue[0])
        if (self.kv_in_use + need > limit and self.radix is not None):
            self.radix.reclaim(self.kv_in_use + need - limit,
                               self.env.now)
        if self.kv_in_use + need > limit:
            break
        r = self.queue.pop(0)
        self.active.append(r)
        admitted.append(r)
        if self.obs.enabled:
            self._obs_admitted(r)
    return admitted


def _build(legacy: bool, observer=None):
    cluster = EdgeCluster.of(FleetSpec.of(
        [NodeSpec("jetson-orin-agx-64gb", max_batch=2),
         NodeSpec("jetson-xavier-agx-32gb", max_batch=2)],
        policy="jsq"), observer=observer)
    if legacy:
        for n in cluster.nodes:
            n._admit = types.MethodType(_legacy_admit, n)
    return cluster


def _workload():
    return multi_tenant_workload(4.0, 40, seed=11)


class TestClusterParity:
    def test_fcfs_is_bit_identical_to_legacy_admission(self):
        """Exact float equality on every per-request timestamp."""
        new = _build(legacy=False)
        old = _build(legacy=True)
        rep_new = new.run(_workload())
        rep_old = old.run(_workload())
        assert len(new.last_requests) == len(old.last_requests)
        for a, b in zip(new.last_requests, old.last_requests):
            assert a.req_id == b.req_id
            assert a.node_id == b.node_id
            assert a.first_token_s == b.first_token_s  # exact, no approx
            assert a.finish_s == b.finish_s
            assert a.energy_j == b.energy_j
        assert rep_new.as_row() == rep_old.as_row()

    def test_fcfs_obs_trace_is_byte_identical_to_legacy(self):
        """No new spans/instants/counters may appear on FCFS paths."""
        obs_new, obs_old = Observer(), Observer()
        _build(legacy=False, observer=obs_new).run(_workload())
        _build(legacy=True, observer=obs_old).run(_workload())
        assert chrome_trace_json(obs_new) == chrome_trace_json(obs_old)

    def test_scheduler_column_reports_the_discipline(self):
        cluster = _build(legacy=False)
        rep = cluster.run(_workload())
        assert rep.scheduler == "fcfs"
        assert rep.as_row()["scheduler"] == "fcfs"


class TestEngineParity:
    def test_default_admission_unchanged_by_fair_scheduler_arg(self):
        arch = get_model("llama")
        device = get_device("jetson-orin-agx-64gb")

        def run(**kwargs):
            sched = ContinuousBatchScheduler(device, arch, Precision.FP16,
                                             max_batch=4, **kwargs)
            return sched.serve(engine_poisson(4.0, 24, seed=3))

        base = run()
        fcfs = run(fair_scheduler="fcfs")
        assert base.as_row() == fcfs.as_row()
