"""Adversarial tenant mixes: fairness uplift, throttling, determinism.

One flooding tenant front-loads the queue with 20 requests inside the
first second; two polite tenants trickle in afterwards.  Under FCFS the
flood monopolises the node and the polite tenants blow their TTFT SLO;
VTC/WSC let them jump the backlog, and the token throttle caps how much
the flooder can even inject.
"""

import json
import subprocess
import sys

import numpy as np

from repro.cluster import EdgeCluster, FleetSpec, NodeSpec
from repro.cluster.slo import SLOSpec
from repro.cluster.workload import ClusterRequest
from repro.fairness import TokenThrottle

WEIGHTS = {"flood": 1.0, "polite-a": 1.0, "polite-b": 1.0}


def adversarial_workload(seed=0):
    rng = np.random.default_rng(seed)
    reqs = []
    for i in range(20):
        reqs.append(ClusterRequest(
            req_id=i, arrival_s=float(rng.uniform(0.0, 1.0)),
            input_tokens=32, output_tokens=32, tenant="flood"))
    rid = 20
    for tenant in ("polite-a", "polite-b"):
        for _ in range(3):
            reqs.append(ClusterRequest(
                req_id=rid, arrival_s=float(rng.uniform(1.0, 30.0)),
                input_tokens=24, output_tokens=24, tenant=tenant))
            rid += 1
    return sorted(reqs, key=lambda r: (r.arrival_s, r.req_id))


def run_scheduler(name, seed=0, throttle=None):
    cluster = EdgeCluster.of(
        FleetSpec.of([NodeSpec("jetson-orin-agx-64gb", max_batch=1,
                               scheduler=name)]),
        slo=SLOSpec(ttft_s=10.0), throttle=throttle,
        tenant_weights=WEIGHTS)
    return cluster.run(adversarial_workload(seed))


def tenant_row(rep, name):
    return next(t for t in rep.tenants if t.tenant == name)


class TestFairnessUplift:
    def test_vtc_and_wsc_beat_fcfs_on_token_fairness(self):
        fcfs = run_scheduler("fcfs")
        vtc = run_scheduler("vtc")
        wsc = run_scheduler("wsc")
        assert vtc.jain_tokens > fcfs.jain_tokens
        assert wsc.jain_tokens > fcfs.jain_tokens

    def test_fair_schedulers_rescue_the_polite_tenants_slo(self):
        fcfs = run_scheduler("fcfs")
        vtc = run_scheduler("vtc")
        for tenant in ("polite-a", "polite-b"):
            assert (tenant_row(vtc, tenant).slo_good_share
                    > tenant_row(fcfs, tenant).slo_good_share)


class TestThrottling:
    def test_throttle_bounds_the_flooders_share(self):
        th = TokenThrottle(20.0, burst_s=4.0)
        rep = run_scheduler("fcfs", throttle=th)
        flood = tenant_row(rep, "flood")
        # Most of the burst is turned away at injection...
        assert flood.throttled >= 10
        assert rep.throttled == flood.throttled
        # ...so the flooder no longer holds the majority of served tokens.
        total = sum(t.served_tokens for t in rep.tenants)
        assert flood.served_tokens / total < 0.5
        # The polite tenants sail through untouched.
        for tenant in ("polite-a", "polite-b"):
            t = tenant_row(rep, tenant)
            assert t.throttled == 0
            assert t.completed == 3

    def test_throttled_demand_is_booked_not_served(self):
        th = TokenThrottle(20.0, burst_s=4.0)
        rep = run_scheduler("fcfs", throttle=th)
        flood = tenant_row(rep, "flood")
        assert flood.throttled_tokens == flood.throttled * 64
        assert rep.throttled_tokens == flood.throttled_tokens


class TestDeterminism:
    def test_repeat_runs_are_bit_identical(self):
        for name in ("fcfs", "vtc", "wsc"):
            a = run_scheduler(name)
            b = run_scheduler(name)
            assert a.as_row() == b.as_row()
            assert [t.as_row() for t in a.tenants] == \
                   [t.as_row() for t in b.tenants]

    def test_stable_across_hash_seeds(self):
        """PYTHONHASHSEED must not reorder tenants, counters or floats."""
        script = (
            "import json\n"
            "from tests.fairness.test_adversarial import run_scheduler\n"
            "rep = run_scheduler('vtc')\n"
            "print(json.dumps([rep.as_row()]"
            " + [t.as_row() for t in rep.tenants], sort_keys=False))\n"
        )
        outs = []
        for hash_seed in ("0", "4242"):
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, check=True,
                env={"PYTHONPATH": "src:.", "PYTHONHASHSEED": hash_seed},
            )
            outs.append(proc.stdout)
        assert outs[0] == outs[1]
        json.loads(outs[0])  # and it is well-formed
