"""Token-throttle unit behaviour: refill, burst caps, counting."""

import pytest

from repro.errors import ConfigError
from repro.fairness import TokenThrottle


class TestValidation:
    def test_rate_must_be_positive(self):
        with pytest.raises(ConfigError):
            TokenThrottle(0.0)

    def test_burst_must_be_positive(self):
        with pytest.raises(ConfigError):
            TokenThrottle(10.0, burst_s=0.0)

    def test_per_tenant_rates_validated(self):
        with pytest.raises(ConfigError):
            TokenThrottle(10.0, rates={"bad": -1.0})


class TestBucket:
    def test_buckets_start_full(self):
        th = TokenThrottle(100.0, burst_s=2.0)
        assert th.level("a", 0.0) == pytest.approx(200.0)

    def test_whole_request_charge_no_partial_take(self):
        th = TokenThrottle(100.0, burst_s=1.0)
        assert th.admit("a", 60, 0.0)
        # 40 left; a 41-token request is refused and takes nothing.
        assert not th.admit("a", 41, 0.0)
        assert th.level("a", 0.0) == pytest.approx(40.0)
        assert th.admit("a", 40, 0.0)

    def test_deterministic_lazy_refill(self):
        th = TokenThrottle(10.0, burst_s=1.0)
        assert th.admit("a", 10, 0.0)
        assert th.level("a", 0.0) == pytest.approx(0.0)
        # 0.5 s later half the bucket is back.
        assert th.level("a", 0.5) == pytest.approx(5.0)
        assert not th.admit("a", 6, 0.5)
        assert th.admit("a", 5, 0.5)

    def test_refill_caps_at_burst(self):
        th = TokenThrottle(10.0, burst_s=1.0)
        th.admit("a", 10, 0.0)
        assert th.level("a", 1000.0) == pytest.approx(10.0)

    def test_clock_never_runs_backwards_the_level(self):
        th = TokenThrottle(10.0, burst_s=1.0)
        th.admit("a", 10, 5.0)
        # A query at an earlier timestamp must not refill or drain.
        assert th.level("a", 5.0) == pytest.approx(0.0)

    def test_per_tenant_rate_override(self):
        th = TokenThrottle(10.0, burst_s=1.0, rates={"vip": 100.0})
        assert th.level("vip", 0.0) == pytest.approx(100.0)
        assert th.level("other", 0.0) == pytest.approx(10.0)

    def test_tenants_are_isolated(self):
        th = TokenThrottle(10.0, burst_s=1.0)
        assert th.admit("a", 10, 0.0)
        assert th.admit("b", 10, 0.0)


class TestCounting:
    def test_throttled_counters_accumulate(self):
        th = TokenThrottle(10.0, burst_s=1.0)
        th.admit("a", 10, 0.0)
        assert not th.admit("a", 7, 0.0)
        assert not th.admit("a", 8, 0.0)
        assert th.throttled_requests == 2
        assert th.throttled_tokens == 15
        assert th.per_tenant()["a"].throttled_requests == 2

    def test_per_tenant_view_is_sorted(self):
        th = TokenThrottle(10.0)
        th.admit("zeta", 1, 0.0)
        th.admit("alpha", 1, 0.0)
        assert list(th.per_tenant()) == ["alpha", "zeta"]
