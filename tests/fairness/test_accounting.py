"""Wasted-token ledgers: conservation, abandonment, throttling."""

from repro.cluster.workload import ClusterRequest
from repro.fairness import build_ledger, conservation_violations


def req(rid, tenant, inp=10, out=20, generated=0, lost=0, finish=None,
        throttled=False, rejected=False, interaction=None):
    r = ClusterRequest(req_id=rid, arrival_s=0.0, input_tokens=inp,
                       output_tokens=out, tenant=tenant,
                       interaction_id=interaction)
    r.generated = generated
    r.lost_tokens = lost
    r.finish_s = finish
    r.throttled = throttled
    r.rejected = rejected or throttled
    return r


class TestLedger:
    def test_completed_request_serves_its_tokens(self):
        led = build_ledger([req(0, "a", generated=20, finish=5.0)])["a"]
        assert led.completed == 1
        assert led.served_tokens == 20
        assert led.wasted_tokens == 0
        assert led.produced_tokens == 20

    def test_replayed_tokens_are_waste(self):
        led = build_ledger([req(0, "a", generated=20, lost=7,
                                finish=5.0)])["a"]
        assert led.served_tokens == 20
        assert led.wasted_tokens == 7
        assert led.produced_tokens == 27

    def test_unfinished_request_wastes_everything(self):
        led = build_ledger([req(0, "a", generated=13, rejected=True)])["a"]
        assert led.served_tokens == 0
        assert led.wasted_tokens == 13
        assert led.rejected == 1

    def test_abandoned_session_turns_count_as_waste(self):
        """The FairServe notion: a dead conversation's context bought
        nothing, even for turns that completed."""
        rs = [req(0, "a", generated=20, finish=5.0, interaction=1),
              req(1, "a", generated=20, finish=9.0, interaction=2)]
        led = build_ledger(rs, abandoned_interactions=frozenset([2]))["a"]
        assert led.served_tokens == 20
        assert led.wasted_tokens == 20
        assert led.completed == 2

    def test_throttled_demand_is_counted_not_produced(self):
        rs = [req(0, "a", inp=10, out=20, throttled=True),
              req(1, "a", generated=20, finish=5.0)]
        led = build_ledger(rs)["a"]
        assert led.throttled == 1
        assert led.throttled_tokens == 30
        assert led.produced_tokens == 20
        assert led.admitted_output_tokens == 20

    def test_slo_predicate_gates_good_tokens(self):
        rs = [req(0, "a", generated=20, finish=5.0),
              req(1, "a", generated=20, finish=50.0)]
        led = build_ledger(rs, slo_met=lambda r: r.finish_s < 10.0)["a"]
        assert led.served_tokens == 40
        assert led.good_tokens == 20
        assert led.slo_good_share == 0.5

    def test_weights_fold_in(self):
        led = build_ledger([req(0, "a")], weights={"a": 3.0})["a"]
        assert led.weight == 3.0

    def test_ledgers_sorted_by_tenant(self):
        rs = [req(0, "z"), req(1, "a")]
        assert list(build_ledger(rs)) == ["a", "z"]


class TestConservation:
    def test_balanced_books_pass(self):
        rs = [req(0, "a", generated=20, lost=5, finish=5.0),
              req(1, "b", throttled=True)]
        ledgers = build_ledger(rs)
        assert conservation_violations(ledgers) == []
        assert conservation_violations(ledgers, node_served_tokens=25) == []

    def test_imbalance_is_reported(self):
        ledgers = build_ledger([req(0, "a", generated=20, finish=5.0)])
        ledgers["a"].wasted_tokens += 1
        out = conservation_violations(ledgers)
        assert len(out) == 1 and "a" in out[0]

    def test_fully_throttled_tenant_must_produce_nothing(self):
        bad = req(0, "a", throttled=True)
        bad.generated = 5  # throttle ran after serving started: a bug
        out = conservation_violations(build_ledger([bad]))
        assert any("throttled" in v for v in out)

    def test_fleet_meter_mismatch_is_reported(self):
        ledgers = build_ledger([req(0, "a", generated=20, finish=5.0)])
        out = conservation_violations(ledgers, node_served_tokens=19)
        assert any("fleet" in v for v in out)
