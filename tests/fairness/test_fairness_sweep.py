"""Fairness sweep: reproducibility gate, row order, cache keys."""

import pytest

from repro.errors import ConfigError
from repro.fairness import (FairnessSpec, fairness_rows_csv, run_fairness)
from repro.fairness.sweep import TENANT_MIXES, _init_mixes


def tiny_spec(**kw):
    base = dict(schedulers=("fcfs", "vtc"), mixes=("flood",),
                n_interactions=6, rate_per_s=3.0, mean_turns=2.0,
                max_turns=3, mean_think_time_s=0.5)
    base.update(kw)
    return FairnessSpec(**base)


class TestSpec:
    def test_unknown_scheduler_is_typed_error(self):
        with pytest.raises(ConfigError):
            tiny_spec(schedulers=("fcfs", "lottery"))

    def test_unknown_mix_is_typed_error_listing_names(self):
        with pytest.raises(ConfigError) as exc:
            tiny_spec(mixes=("rushhour",))
        assert "rushhour" in str(exc.value)
        assert "flood" in str(exc.value)

    def test_empty_axes_rejected(self):
        with pytest.raises(ConfigError):
            tiny_spec(schedulers=())
        with pytest.raises(ConfigError):
            tiny_spec(kv_policies=())

    def test_negative_throttle_rejected(self):
        with pytest.raises(ConfigError):
            tiny_spec(throttle_rate=-1.0)

    def test_builtin_mixes_registered(self):
        _init_mixes()
        assert {"balanced", "flood", "weighted"} <= set(TENANT_MIXES)


class TestCacheKey:
    def test_stable_for_equal_specs(self):
        assert tiny_spec().cache_key() == tiny_spec().cache_key()

    def test_changes_with_every_axis(self):
        base = tiny_spec().cache_key()
        assert tiny_spec(seed=1).cache_key() != base
        assert tiny_spec(schedulers=("fcfs",)).cache_key() != base
        assert tiny_spec(mixes=("balanced",)).cache_key() != base
        assert tiny_spec(throttle_rate=10.0).cache_key() != base

    def test_folds_the_fairness_version(self):
        """Bump FAIRNESS_VERSION -> every cached sweep invalidates."""
        import repro.fairness.sweep as sweep_mod
        base = tiny_spec().cache_key()
        old = sweep_mod.FAIRNESS_VERSION
        sweep_mod.FAIRNESS_VERSION = old + "-bumped"
        try:
            assert tiny_spec().cache_key() != base
        finally:
            sweep_mod.FAIRNESS_VERSION = old


class TestSweep:
    def test_rows_csv_is_bit_reproducible(self):
        spec = tiny_spec()
        a = fairness_rows_csv(run_fairness(spec))
        b = fairness_rows_csv(run_fairness(spec))
        assert a == b
        assert a.endswith("\n")

    def test_row_order_is_the_declared_grid_order(self):
        rep = run_fairness(tiny_spec())
        assert [(r["mix"], r["scheduler"]) for r in rep.rows] == \
            [("flood", "fcfs"), ("flood", "vtc")]

    def test_rows_carry_the_fairness_columns(self):
        rep = run_fairness(tiny_spec(schedulers=("fcfs",)))
        row = rep.rows[0]
        for col in ("jain", "jain_tokens", "wasted_tokens",
                    "throttled_tokens", "prefix_hit_rate", "j_per_token"):
            assert col in row

    def test_table_renders_all_rows(self):
        rep = run_fairness(tiny_spec(schedulers=("fcfs",)))
        text = rep.table()
        assert "scheduler" in text.splitlines()[0]
        assert len(text.splitlines()) == 1 + len(rep.rows)


class TestWeightedEntitlements:
    """The ``weighted`` mix carries profile weights into the schedulers.

    Premium pays for a 3x entitlement; both tenants demand roughly
    equal tokens.  While both are backlogged a weight-honoring
    scheduler serves premium ~3x standard's tokens, so its
    ``weight_fidelity`` (served tokens per unit entitlement inside the
    contended window, worst/best) must sit well above FCFS's, which
    serves demand (~1:1 — a third of the entitled ratio).
    """

    def test_vtc_honors_the_weight_ratio(self):
        rep = run_fairness(FairnessSpec(
            mixes=("weighted",), schedulers=("fcfs", "vtc")))
        by = {r["scheduler"]: r for r in rep.rows}
        assert by["vtc"]["weight_fidelity"] >= 0.5
        assert by["vtc"]["weight_fidelity"] > \
            by["fcfs"]["weight_fidelity"] + 0.2

    def test_equal_weight_mixes_keep_unit_entitlements(self):
        """Non-weighted mixes must not leak profile weights into the
        schedulers: the flood tenant's 8x *arrival* share is exactly
        the adversary fair queueing exists to contain."""
        from repro.fairness.sweep import WEIGHTED_ENTITLEMENT_MIXES

        assert "flood" not in WEIGHTED_ENTITLEMENT_MIXES
        assert "balanced" not in WEIGHTED_ENTITLEMENT_MIXES
        assert "weighted" in WEIGHTED_ENTITLEMENT_MIXES
