"""Paper data integrity and calibration fitting."""

import math

import pytest

from repro.calibration import paperdata
from repro.calibration.constants import (
    CALIBRATED_COST_PARAMS,
    PPL_ANCHORS,
    PPL_SENSITIVITY,
)
from repro.calibration.fitting import (
    _latency_targets,
    fit_cost_params,
    fit_ppl_sensitivity,
    predict_latency,
)
from repro.errors import CalibrationError


class TestPaperData:
    def test_tables_cover_all_models_and_sizes(self):
        for table in (paperdata.TABLE4_BATCH_WIKITEXT,
                      paperdata.TABLE5_BATCH_LONGBENCH):
            assert set(table) == set(paperdata.MODELS)
            for rows in table.values():
                assert set(rows) == set(paperdata.BATCH_SIZES)
        for table in (paperdata.TABLE6_SEQLEN_LONGBENCH,
                      paperdata.TABLE7_SEQLEN_WIKITEXT):
            assert set(table) == set(paperdata.MODELS)
            for rows in table.values():
                assert set(rows) == set(paperdata.SEQ_LENGTHS)

    def test_phi2_ooms_recorded(self):
        assert paperdata.TABLE6_SEQLEN_LONGBENCH["MS-Phi2"][512] == (None,) * 3
        assert paperdata.TABLE7_SEQLEN_WIKITEXT["MS-Phi2"][1024] == (None,) * 3

    def test_seqlen_splits_sum(self):
        for total, (inp, out) in paperdata.SEQLEN_SPLIT.items():
            assert inp + out == total

    def test_throughput_consistent_with_latency(self):
        """Within each row, tokens/latency ~ reported throughput.  The
        paper's own tables carry up to ~17% internal inconsistency on a
        few cells (e.g. Mistral bs=2), so the tolerance is generous."""
        for model, rows in paperdata.TABLE4_BATCH_WIKITEXT.items():
            for bs, (_ram, lat, tp) in rows.items():
                expected = bs * 96 / lat
                assert tp == pytest.approx(expected, rel=0.20), (model, bs)

    def test_perplexity_anchor_tables_consistent(self):
        for ds, anchors in PPL_ANCHORS.items():
            for model, val in anchors.items():
                table = paperdata.TABLE3_PERPLEXITY[ds][model]
                assert val in table.values()


class TestFitting:
    def test_latency_targets_skip_oom(self):
        targets = _latency_targets()
        assert all(t[-1] is not None for t in targets)
        assert len(targets) >= 40

    def test_shipped_params_fit_quality(self):
        """The frozen constants must predict the paper's latencies with
        median error under 20%."""
        errs = []
        for model, bs, inp, outp, lat in _latency_targets():
            pred = predict_latency(CALIBRATED_COST_PARAMS, model, bs, inp, outp,
                                   stride=8)
            errs.append(abs(math.log(pred / lat)))
        errs.sort()
        assert errs[len(errs) // 2] < 0.20

    def test_fit_improves_or_matches_defaults(self):
        from repro.engine.kernels import EngineCostParams

        subset = _latency_targets()[:10]
        fitted = fit_cost_params(targets=subset)

        def rms(params):
            import numpy as np

            r = [math.log(predict_latency(params, m, b, i, o, stride=8) / lat)
                 for m, b, i, o, lat in subset]
            return float(np.sqrt(np.mean(np.square(r))))

        assert rms(fitted) <= rms(EngineCostParams()) + 1e-9

    def test_fit_requires_targets(self):
        with pytest.raises(CalibrationError):
            fit_cost_params(targets=[])

    def test_ppl_sensitivities_positive_and_frozen_values_close(self):
        fresh = fit_ppl_sensitivity()
        for model, s in fresh.items():
            assert s > 0
            assert s == pytest.approx(PPL_SENSITIVITY[model], rel=0.05)
