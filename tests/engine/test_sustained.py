"""Sustained serving with thermal feedback."""

import pytest

from repro.engine.request import GenerationSpec
from repro.engine.sustained import run_sustained
from repro.errors import ExperimentError
from repro.hardware import get_device
from repro.hardware.thermal import ThermalModel
from repro.models import get_model
from repro.power.modes import apply_power_mode, get_power_mode
from repro.quant.dtypes import Precision

GEN = GenerationSpec(16, 32)


def hot_thermal():
    # Aggressive thermals so the effect shows within a short session.
    return ThermalModel(ambient_c=45.0, r_thermal_c_per_w=1.6, tau_s=30.0,
                        throttle_temp_c=85.0, resume_temp_c=80.0,
                        throttle_freq_ratio=0.5)


def test_temperature_rises_and_throttles_at_maxn(orin):
    samples = run_sustained(orin, get_model("mistral"), Precision.FP16,
                            duration_s=600.0, batch_size=32, gen=GEN,
                            thermal=hot_thermal())
    temps = [s.temp_c for s in samples]
    assert temps[-1] > temps[0]
    assert any(s.throttled for s in samples)
    # Throughput degrades once throttled.
    first = samples[0].throughput_tok_s
    throttled_tp = min(s.throughput_tok_s for s in samples if s.throttled)
    assert throttled_tp < 0.9 * first


def test_low_power_mode_sustains_without_throttling(orin):
    apply_power_mode(orin, get_power_mode("B"))
    samples = run_sustained(orin, get_model("mistral"), Precision.FP16,
                            duration_s=600.0, batch_size=32, gen=GEN,
                            thermal=hot_thermal())
    assert not any(s.throttled for s in samples)
    tps = [s.throughput_tok_s for s in samples]
    assert max(tps) - min(tps) < 0.05 * max(tps)


def test_gpu_clock_restored_after_session(orin):
    before = orin.gpu.freq_hz
    run_sustained(orin, get_model("phi2"), Precision.FP16, duration_s=30.0,
                  batch_size=8, gen=GEN, thermal=hot_thermal())
    assert orin.gpu.freq_hz == before


def test_samples_cover_duration(orin):
    samples = run_sustained(orin, get_model("phi2"), Precision.FP16,
                            duration_s=20.0, batch_size=8, gen=GEN)
    assert samples[-1].t_end_s >= 20.0
    assert all(s.batch_latency_s > 0 for s in samples)


def test_invalid_duration(orin):
    with pytest.raises(ExperimentError):
        run_sustained(orin, get_model("phi2"), Precision.FP16, duration_s=0)
