"""Property-based invariants of the cost model.

These encode the physics the paper's trends rely on: costs are monotone
in work, frequencies act in the right direction, and throughput behaves
sub-linearly in batch size.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.kernels import EngineCostParams, StepTimer
from repro.hardware.jetson import orin_agx_64gb
from repro.models.zoo import llama31_8b, phi2
from repro.quant.dtypes import Precision

ARCHS = {"llama": llama31_8b(), "phi2": phi2()}


def make_timer(arch_name="llama", precision=Precision.FP16, device=None):
    return StepTimer(ARCHS[arch_name], device or orin_agx_64gb(), precision,
                     EngineCostParams())


@given(
    bs=st.integers(min_value=1, max_value=256),
    context=st.integers(min_value=1, max_value=4096),
    arch=st.sampled_from(["llama", "phi2"]),
    precision=st.sampled_from([Precision.FP16, Precision.INT8, Precision.INT4]),
)
@settings(max_examples=120, deadline=None)
def test_step_cost_always_positive_and_consistent(bs, context, arch, precision):
    cost = make_timer(arch, precision).decode_step(bs, context)
    assert cost.seconds > 0
    assert cost.t_mem > 0 and cost.t_comp > 0
    assert 0 <= cost.gpu_compute_frac <= cost.gpu_busy_frac <= 1
    assert 0 <= cost.mem_bw_frac <= 1
    assert cost.seconds >= max(cost.t_mem, cost.t_comp)


@given(
    bs=st.integers(min_value=1, max_value=128),
    c1=st.integers(min_value=1, max_value=2000),
    c2=st.integers(min_value=1, max_value=2000),
)
@settings(max_examples=80, deadline=None)
def test_cost_monotone_in_context(bs, c1, c2):
    timer = make_timer()
    lo, hi = sorted((c1, c2))
    assert timer.decode_step(bs, lo).seconds <= timer.decode_step(bs, hi).seconds


@given(
    b1=st.integers(min_value=1, max_value=256),
    b2=st.integers(min_value=1, max_value=256),
    context=st.integers(min_value=1, max_value=1024),
)
@settings(max_examples=80, deadline=None)
def test_cost_monotone_in_batch_and_throughput_sublinear(b1, b2, context):
    timer = make_timer()
    lo, hi = sorted((b1, b2))
    t_lo = timer.decode_step(lo, context).seconds
    t_hi = timer.decode_step(hi, context).seconds
    assert t_lo <= t_hi
    # Per-token cost never increases with batch (weights amortise).
    assert t_hi / hi <= t_lo / lo * 1.0001


@given(ratio=st.floats(min_value=0.15, max_value=1.0))
@settings(max_examples=40, deadline=None)
def test_memory_clock_monotone(ratio):
    device = orin_agx_64gb()
    timer = StepTimer(ARCHS["llama"], device, Precision.FP16, EngineCostParams())
    base = timer.decode_step(32, 64).seconds
    device.memory.set_freq(device.memory.max_freq_hz * ratio)
    slowed = timer.decode_step(32, 64).seconds
    assert slowed >= base * 0.999


@given(ratio=st.floats(min_value=0.1, max_value=1.0))
@settings(max_examples=40, deadline=None)
def test_gpu_clock_monotone(ratio):
    device = orin_agx_64gb()
    timer = StepTimer(ARCHS["llama"], device, Precision.FP16, EngineCostParams())
    base = timer.decode_step(128, 64).seconds
    device.gpu.set_freq(
        max(device.gpu.min_freq_hz, device.gpu.max_freq_hz * ratio)
    )
    assert timer.decode_step(128, 64).seconds >= base * 0.999


@given(
    bs=st.integers(min_value=1, max_value=64),
    prompt=st.integers(min_value=1, max_value=512),
)
@settings(max_examples=60, deadline=None)
def test_prefill_positive_and_monotone(bs, prompt):
    timer = make_timer()
    c = timer.prefill(bs, prompt)
    assert c.seconds > 0
    assert timer.prefill(bs, prompt + 1).seconds >= c.seconds
