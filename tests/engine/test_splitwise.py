"""Phase-split (Splitwise-style) serving simulation."""

import pytest

from repro.engine.request import GenerationSpec
from repro.engine.splitwise import (
    simulate_phase_split,
    split_break_even_prompt_tokens,
)
from repro.errors import ExperimentError
from repro.hardware import get_device
from repro.models import get_model
from repro.quant.dtypes import Precision


def split(gen, link=10e9 / 8, prefill_dev="a100-sxm-80gb",
          decode_dev="jetson-orin-agx-64gb", model="llama"):
    return simulate_phase_split(
        get_device(prefill_dev), get_device(decode_dev), get_model(model),
        Precision.FP16, batch_size=32, gen=gen, link_bytes_per_s=link,
    )


class TestPhaseSplit:
    def test_stage_accounting(self):
        res = split(GenerationSpec(256, 64))
        assert res.split_latency_s == pytest.approx(
            res.prefill_stage_s + res.kv_transfer_s + res.decode_stage_s
        )
        assert res.split_batch_s == pytest.approx(
            max(res.prefill_stage_s, res.kv_transfer_s, res.decode_stage_s)
        )
        assert res.speedup == pytest.approx(
            res.collocated_batch_s / res.split_batch_s
        )

    def test_fast_prefill_device_speeds_up_long_prompts(self):
        """Long prompt + short generation: offloading prefill to an A100
        relieves the edge box of its compute-bound phase."""
        res = split(GenerationSpec(1024, 32))
        assert res.speedup > 1.1
        assert res.prefill_stage_s < res.decode_stage_s

    def test_short_prompts_do_not_benefit(self):
        """Decode-dominated workloads leave nothing to offload."""
        res = split(GenerationSpec(32, 256))
        assert res.speedup < 1.15

    def test_slow_link_erases_the_win(self):
        fast = split(GenerationSpec(1024, 32), link=10e9 / 8)
        slow = split(GenerationSpec(1024, 32), link=100e6 / 8)  # 100 Mb
        assert slow.kv_transfer_s > 10 * fast.kv_transfer_s
        assert slow.speedup < fast.speedup

    def test_symmetric_devices_never_lose(self):
        """Same device on both sides: pipelining can only help
        throughput (period = max stage <= sum of stages)."""
        res = split(GenerationSpec(256, 64),
                    prefill_dev="jetson-orin-agx-64gb")
        assert res.speedup >= 1.0

    def test_validation(self):
        with pytest.raises(ExperimentError):
            split(GenerationSpec(64, 64), link=0)


class TestBreakEven:
    def test_break_even_exists_with_fast_link(self):
        tokens = split_break_even_prompt_tokens(
            get_device("a100-sxm-80gb"), get_device("jetson-orin-agx-64gb"),
            get_model("llama"), Precision.FP16, output_tokens=32,
        )
        assert tokens is not None
        assert 64 <= tokens <= 8192

    def test_no_break_even_for_generation_heavy_work(self):
        tokens = split_break_even_prompt_tokens(
            get_device("a100-sxm-80gb"), get_device("jetson-orin-agx-64gb"),
            get_model("llama"), Precision.FP16, output_tokens=2048,
            max_prompt=512,
        )
        assert tokens is None
