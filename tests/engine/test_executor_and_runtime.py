"""Batch executor and serving runtime."""

import pytest

from repro.engine import GenerationSpec, ServingEngine
from repro.engine.executor import BatchExecutor
from repro.engine.kernels import StepTimer
from repro.engine.request import BatchRequest
from repro.engine.state import EngineState
from repro.errors import ExperimentError, OutOfMemoryError
from repro.hardware import get_device
from repro.memsys.allocator import CachingAllocator
from repro.models import get_model
from repro.quant.dtypes import Precision
from repro.sim import Environment
from repro.units import gib


def run_batch(arch_name="llama", precision=Precision.FP16, bs=4,
              gen=GenerationSpec(8, 8), capacity=gib(60), kv_mode="dynamic",
              device=None):
    device = device or get_device("jetson-orin-agx-64gb")
    timer = StepTimer(get_model(arch_name), device, precision)
    allocator = CachingAllocator(capacity)
    execu = BatchExecutor(timer, allocator, kv_mode=kv_mode,
                          workspace_bytes=int(1e8))
    env = Environment()
    state = EngineState()
    req = BatchRequest(batch_size=bs, gen=gen)
    proc = env.process(execu.run(env, req, state))
    result = env.run(until=proc)
    return result, allocator, env


class TestExecutor:
    def test_latency_is_prefill_plus_decode(self):
        res, _, env = run_batch()
        assert not res.oom
        assert len(res.step_seconds) == 8
        assert res.latency_s == pytest.approx(res.prefill_s + res.decode_s)
        assert env.now == pytest.approx(res.latency_s)

    def test_memory_fully_released_after_run(self):
        res, alloc, _ = run_batch()
        assert alloc.allocated_bytes == 0

    def test_oom_mid_run_is_caught_and_cleaned_up(self):
        res, alloc, _ = run_batch(
            arch_name="phi2", bs=32, gen=GenerationSpec(128, 384),
            capacity=gib(30),
        )
        assert res.oom
        assert alloc.allocated_bytes == 0  # everything released

    def test_eager_model_uses_more_memory_than_sdpa_model(self):
        """Phi-2's eager score buffers vs Llama-style SDPA."""
        _, alloc_eager, _ = run_batch("phi2", bs=8, gen=GenerationSpec(32, 32))
        _, alloc_sdpa, _ = run_batch("llama", bs=8, gen=GenerationSpec(32, 32))
        eager_extra = alloc_eager.stats.peak_reserved
        sdpa_extra = alloc_sdpa.stats.peak_reserved
        # Compare non-weight footprints (weights aren't allocated here).
        assert eager_extra > sdpa_extra

    def test_static_cache_reduces_peak(self):
        _, dyn, _ = run_batch(bs=16, gen=GenerationSpec(64, 128), kv_mode="dynamic")
        _, sta, _ = run_batch(bs=16, gen=GenerationSpec(64, 128), kv_mode="static")
        assert sta.stats.peak_reserved <= dyn.stats.peak_reserved

    def test_throughput_definition(self):
        res, _, _ = run_batch(bs=4, gen=GenerationSpec(8, 8))
        assert res.throughput_tok_s == pytest.approx(
            4 * 16 / res.latency_s
        )


class TestServingEngine:
    def test_load_allocates_weights(self, orin):
        eng = ServingEngine(orin, get_model("phi2"), Precision.FP16)
        assert eng.tracker.model_bytes == pytest.approx(5.56e9, rel=0.03)

    def test_load_oom_for_oversized_model(self, orin):
        with pytest.raises(OutOfMemoryError):
            ServingEngine(orin, get_model("mistral"), Precision.FP32)

    def test_run_returns_paper_protocol_aggregates(self, orin):
        eng = ServingEngine(orin, get_model("phi2"), Precision.FP16)
        res = eng.run(batch_size=4, gen=GenerationSpec(8, 8), n_runs=3)
        assert len(res.batches) == 3
        assert res.mean_latency_s > 0
        assert res.throughput_tok_s > 0
        assert res.median_power_w > orin.idle_power_w
        assert res.energy_j > 0
        assert res.total_gb >= res.incremental_gb

    def test_as_row_format(self, orin):
        eng = ServingEngine(orin, get_model("phi2"), Precision.FP16)
        row = eng.run(batch_size=2, gen=GenerationSpec(4, 4), n_runs=1).as_row()
        assert row["model"] == "MS-Phi2"
        assert row["precision"] == "fp16"
        assert set(row) >= {"ram_gb", "latency_s", "throughput_tok_s",
                            "power_w", "energy_j"}

    def test_power_mode_applied(self, orin):
        from repro.power.modes import get_power_mode

        eng = ServingEngine(orin, get_model("phi2"), Precision.FP16)
        base = eng.run(batch_size=4, gen=GenerationSpec(8, 16), n_runs=2)
        slow = eng.run(batch_size=4, gen=GenerationSpec(8, 16), n_runs=2,
                       power_mode=get_power_mode("H"))
        assert slow.mean_latency_s > 1.5 * base.mean_latency_s
        assert slow.power_mode == "H"

    def test_invalid_protocol_args(self, orin):
        eng = ServingEngine(orin, get_model("phi2"), Precision.FP16)
        with pytest.raises(ExperimentError):
            eng.run(batch_size=1, gen=GenerationSpec(2, 2), n_runs=0)

    def test_run_latency_scales_with_output_tokens(self, orin):
        eng = ServingEngine(orin, get_model("phi2"), Precision.FP16)
        short = eng.run(batch_size=2, gen=GenerationSpec(8, 8), n_runs=1)
        long = eng.run(batch_size=2, gen=GenerationSpec(8, 64), n_runs=1)
        assert long.mean_latency_s > 4 * short.mean_latency_s
