"""Per-step cost model."""

import pytest

from repro.engine import EngineCostParams, StepTimer
from repro.errors import ConfigError
from repro.models import get_model
from repro.power.modes import apply_power_mode, get_power_mode
from repro.quant.dtypes import Precision


@pytest.fixture
def timer(orin):
    return StepTimer(get_model("llama"), orin, Precision.FP16, EngineCostParams())


class TestDecodeStep:
    def test_cost_fields_consistent(self, timer):
        c = timer.decode_step(32, 64)
        assert c.seconds == pytest.approx(
            (c.t_mem**2 + c.t_comp**2) ** 0.5 + c.t_kernel_floor + c.t_host,
            rel=1e-6,
        )
        assert 0 <= c.gpu_compute_frac <= c.gpu_busy_frac <= 1.0
        assert 0 <= c.mem_bw_frac <= 1.0

    def test_longer_context_costs_more(self, timer):
        assert timer.decode_step(32, 512).seconds > timer.decode_step(32, 64).seconds

    def test_larger_batch_costs_more_per_step_but_less_per_token(self, timer):
        c1 = timer.decode_step(1, 64)
        c64 = timer.decode_step(64, 64)
        assert c64.seconds > c1.seconds
        assert c64.seconds / 64 < c1.seconds

    def test_decode_is_memory_bound_at_small_batch(self, timer):
        c = timer.decode_step(1, 64)
        assert c.t_mem > c.t_comp

    def test_concat_bytes_add_memory_time(self, timer):
        base = timer.decode_step(32, 64, concat_bytes=0.0)
        churn = timer.decode_step(32, 64, concat_bytes=2e9)
        assert churn.t_mem > base.t_mem

    def test_gpu_downclock_slows_compute_side(self, orin):
        t1 = StepTimer(get_model("mistral"), orin, Precision.FP16)
        big_batch = t1.decode_step(128, 64).seconds
        apply_power_mode(orin, get_power_mode("B"))  # GPU 400 MHz
        slow = StepTimer(get_model("mistral"), orin, Precision.FP16)
        assert slow.decode_step(128, 64).seconds > 1.5 * big_batch

    def test_mem_downclock_slows_everything(self, orin):
        t = StepTimer(get_model("llama"), orin, Precision.FP16)
        base = t.decode_step(32, 64).seconds
        apply_power_mode(orin, get_power_mode("H"))  # mem 665 MHz
        assert t.decode_step(32, 64).seconds > 3 * base

    def test_cpu_downclock_slows_host_side_only(self, orin):
        t = StepTimer(get_model("llama"), orin, Precision.FP16)
        base = t.decode_step(32, 64)
        apply_power_mode(orin, get_power_mode("D"))  # CPU 1.2 GHz
        slow = t.decode_step(32, 64)
        assert slow.t_host > 1.5 * base.t_host
        assert slow.t_mem == pytest.approx(base.t_mem)

    def test_core_count_has_no_effect(self, orin):
        """PM-E/F: the generate loop is serial."""
        t = StepTimer(get_model("llama"), orin, Precision.FP16)
        base = t.decode_step(32, 64).seconds
        apply_power_mode(orin, get_power_mode("F"))  # 4 cores
        # rel tolerance: mode F also nudges the CPU clock from the
        # hardware max 2.2014 GHz to the nominal 2.2 GHz.
        assert t.decode_step(32, 64).seconds == pytest.approx(base, rel=1e-3)


class TestQuantizationCosts:
    def test_int8_slower_than_fp16_on_edge(self, orin):
        fp16 = StepTimer(get_model("llama"), orin, Precision.FP16)
        int8 = StepTimer(get_model("llama"), orin, Precision.INT8)
        assert int8.decode_step(32, 64).seconds > 1.2 * fp16.decode_step(32, 64).seconds

    def test_int4_slower_than_int8_on_edge(self, orin):
        int8 = StepTimer(get_model("llama"), orin, Precision.INT8)
        int4 = StepTimer(get_model("llama"), orin, Precision.INT4)
        assert int4.decode_step(32, 64).seconds > int8.decode_step(32, 64).seconds

    def test_int8_faster_than_fp16_for_big_models_on_a100(self, a100):
        """The §3.3 crossover: native INT8 GEMM wins for large models."""
        arch = get_model("mistral")  # 24B > 13B threshold
        fp16 = StepTimer(arch, a100, Precision.FP16)
        int8 = StepTimer(arch, a100, Precision.INT8)
        assert int8.decode_step(16, 64).seconds < fp16.decode_step(16, 64).seconds

    def test_int8_not_faster_for_small_models_on_a100(self, a100):
        arch = get_model("phi2")
        fp16 = StepTimer(arch, a100, Precision.FP16)
        int8 = StepTimer(arch, a100, Precision.INT8)
        assert int8.decode_step(1, 64).seconds >= 0.95 * fp16.decode_step(1, 64).seconds


class TestPrefill:
    def test_prefill_is_compute_heavy(self, timer):
        c = timer.prefill(32, 256)
        assert c.t_comp > c.t_mem

    def test_prefill_scales_with_prompt(self, timer):
        assert timer.prefill(32, 256).seconds > timer.prefill(32, 32).seconds


class TestParams:
    def test_validation(self):
        with pytest.raises(ConfigError):
            EngineCostParams(overlap_p=0.5)
        with pytest.raises(ConfigError):
            EngineCostParams(kernel_floor_s=-1)
        with pytest.raises(ConfigError):
            EngineCostParams(bw_scale=0)

    def test_with_override(self):
        p = EngineCostParams().with_(bw_scale=0.9)
        assert p.bw_scale == 0.9


class TestStepCostMemoization:
    def test_repeat_queries_hit_the_memo(self, timer):
        a = timer.decode_step(32, 64, concat_bytes=1024.0)
        misses = timer.memo_misses
        b = timer.decode_step(32, 64, concat_bytes=1024.0)
        assert b is a  # memoized object, not a recomputation
        assert timer.memo_misses == misses and timer.memo_hits >= 1
        timer.prefill(32, 64)
        p_misses = timer.memo_misses
        timer.prefill(32, 64)
        assert timer.memo_misses == p_misses

    def test_distinct_inputs_miss(self, timer):
        timer.decode_step(32, 64)
        misses = timer.memo_misses
        timer.decode_step(32, 65)
        timer.decode_step(16, 64)
        timer.decode_step(32, 64, concat_bytes=8.0)
        assert timer.memo_misses == misses + 3

    def test_power_mode_change_invalidates(self, timer):
        # Start from applied MAXN: the preset device boots with a
        # slightly different CPU clock than Table 2's nominal 2.2 GHz.
        apply_power_mode(timer.device, get_power_mode("MAXN"))
        maxn = timer.decode_step(32, 64)
        apply_power_mode(timer.device, get_power_mode("H"))
        throttled = timer.decode_step(32, 64)
        assert throttled.seconds > maxn.seconds
        # Back to MAXN must reproduce the original cost (from the memo,
        # keyed by operating point — not a stale throttled entry).
        apply_power_mode(timer.device, get_power_mode("MAXN"))
        again = timer.decode_step(32, 64)
        assert again.seconds == maxn.seconds

    def test_memoized_costs_equal_fresh_timer(self, orin):
        warm = StepTimer(get_model("llama"), orin, Precision.FP16,
                         EngineCostParams())
        for _ in range(3):
            warm.decode_step(8, 40)
        fresh = StepTimer(get_model("llama"), orin, Precision.FP16,
                          EngineCostParams())
        assert warm.decode_step(8, 40) == fresh.decode_step(8, 40)
