"""Decode fast-forward must be observationally invisible.

The fast path collapses per-token decode events into one absolute-time
timeout per inter-event stretch.  Its contract is *bit-identical*
results: every latency, per-step duration, power sample, energy
integral, and memory milestone must match the step-by-step execution —
not approximately, exactly, because timestamps are accumulated in the
same float-addition order and scheduled at absolute times.

The suite runs both paths across precisions, power modes, batch sizes,
generation lengths, sampler-period edge cases, and an OOM
configuration, and also asserts serial == parallel for the process
fan-out of :mod:`repro.core.parallel`.
"""

from __future__ import annotations

import pytest

from repro.core.experiment import ExperimentSpec, run_experiment
from repro.core.parallel import run_specs
from repro.engine.request import GenerationSpec
from repro.engine.runtime import RunResult, ServingEngine
from repro.hardware.device import get_device
from repro.models.zoo import get_model
from repro.power.modes import get_power_mode
from repro.quant.dtypes import Precision


def _run(fast_forward: bool, *, model="MS-Phi2", precision=Precision.FP16,
         batch_size=4, gen=GenerationSpec(16, 48), power_mode="MAXN",
         n_runs=2, sample_period_s=2.0) -> RunResult:
    engine = ServingEngine(
        get_device("jetson-orin-agx-64gb"), get_model(model), precision,
        sample_period_s=sample_period_s, fast_forward=fast_forward,
    )
    return engine.run(batch_size=batch_size, gen=gen, n_runs=n_runs,
                      power_mode=get_power_mode(power_mode))


def assert_identical(a: RunResult, b: RunResult) -> None:
    """Every observable equal — floats bit-for-bit, not approximately."""
    assert a.oom == b.oom
    assert a.mean_latency_s == b.mean_latency_s
    assert a.throughput_tok_s == b.throughput_tok_s
    assert a.median_power_w == b.median_power_w
    assert a.energy_j == b.energy_j
    assert a.model_gb == b.model_gb
    assert a.incremental_gb == b.incremental_gb
    assert a.total_gb == b.total_gb
    assert len(a.batches) == len(b.batches)
    for ba, bb in zip(a.batches, b.batches):
        assert ba.oom == bb.oom
        assert ba.latency_s == bb.latency_s
        assert ba.prefill_s == bb.prefill_s
        assert ba.decode_s == bb.decode_s
        assert ba.step_seconds == bb.step_seconds


CONFIGS = [
    pytest.param({}, id="default"),
    pytest.param({"model": "Llama3"}, id="llama"),
    pytest.param({"precision": Precision.INT8}, id="int8"),
    pytest.param({"precision": Precision.INT4}, id="int4"),
    pytest.param({"power_mode": "H"}, id="powermode-H"),
    pytest.param({"power_mode": "E"}, id="powermode-E"),
    pytest.param({"batch_size": 128}, id="big-batch"),
    pytest.param({"gen": GenerationSpec(128, 384)}, id="long-gen"),
    pytest.param({"gen": GenerationSpec(1, 1)}, id="one-token"),
    # Sampler-period edges: ticks denser than steps (many events inside
    # one decode stretch) and a period that lands mid-step repeatedly.
    pytest.param({"sample_period_s": 0.013}, id="dense-sampler"),
    pytest.param({"sample_period_s": 0.0503, "gen": GenerationSpec(8, 96)},
                 id="odd-sampler"),
]


@pytest.mark.parametrize("overrides", CONFIGS)
def test_fast_forward_is_bit_identical(overrides):
    slow = _run(False, **overrides)
    fast = _run(True, **overrides)
    assert_identical(slow, fast)


def test_fast_forward_identical_under_oom():
    # Phi-2's eager score buffers blow up with context: bs=32 at
    # sl=1024 OOMs mid-decode on the 64 GB board (the paper's OOM cell).
    over = dict(model="MS-Phi2", batch_size=32, gen=GenerationSpec(256, 768))
    slow = _run(False, **over)
    fast = _run(True, **over)
    assert slow.oom, "expected this configuration to OOM"
    assert_identical(slow, fast)


def test_fast_forward_runs_fewer_events():
    """The fast path must actually collapse events, not just match."""
    from repro.engine.executor import BatchExecutor
    from repro.engine.state import EngineState
    from repro.memsys.allocator import CachingAllocator
    from repro.engine.kernels import StepTimer
    from repro.engine.request import BatchRequest
    from repro.sim.environment import Environment

    def count_yields(fast_forward):
        env = Environment()
        timer = StepTimer(get_model("Llama3"),
                          get_device("jetson-orin-agx-64gb"), Precision.FP16)
        ex = BatchExecutor(timer, CachingAllocator(int(60e9)),
                           fast_forward=fast_forward)
        gen = ex.run(env, BatchRequest(batch_size=2, gen=GenerationSpec(8, 64)),
                     EngineState())
        n = 0
        try:
            ev = next(gen)
            while True:
                n += 1
                env.run(until=ev)
                ev = gen.send(ev._value)
        except StopIteration:
            pass
        return n

    slow, fast = count_yields(False), count_yields(True)
    assert slow == 1 + 64  # prefill + one event per decode step
    # No sampler in this env, so the whole decode collapses to one event.
    assert fast == 2


SPEC_CONFIGS = [
    pytest.param({"kv_mode": "static"}, id="static-kv"),
    pytest.param({"kv_mode": "static", "batch_size": 64}, id="static-big"),
    pytest.param({"runtime": "gguf"}, id="gguf"),
    pytest.param({"runtime": "gguf", "precision": Precision.INT4},
                 id="gguf-int4"),
    pytest.param({"runtime": "paged"}, id="paged"),
    pytest.param({"runtime": "paged", "power_mode": "E"}, id="paged-mode-E"),
]


@pytest.mark.parametrize("overrides", SPEC_CONFIGS)
def test_fast_forward_identical_across_runtimes_and_kv_modes(overrides):
    """The fastpath only engages where it is provably exact (hf dynamic/
    static KV on the caching allocator); every other backend must fall
    back to the generic path — and all of them must stay bit-identical
    to per-token stepping."""
    kwargs = dict(model="Llama3", batch_size=4, n_runs=2)
    kwargs.update(overrides)
    spec = ExperimentSpec(**kwargs)
    assert_identical(run_experiment(spec, fast_forward=False),
                     run_experiment(spec, fast_forward=True))


def test_run_experiment_fast_forward_flag_matches():
    spec = ExperimentSpec(model="Mistral-Base", precision=Precision.INT4,
                          batch_size=8, n_runs=2)
    assert_identical(run_experiment(spec, fast_forward=False),
                     run_experiment(spec, fast_forward=True))


def test_serial_vs_parallel_study_identical():
    specs = [
        ExperimentSpec(model="MS-Phi2", batch_size=2, n_runs=1),
        ExperimentSpec(model="MS-Phi2", batch_size=4, n_runs=1),
        ExperimentSpec(model="Llama3", precision=Precision.INT8,
                       batch_size=2, n_runs=1),
        ExperimentSpec(model="MS-Phi2", power_mode="H", batch_size=2,
                       n_runs=1),
    ]
    serial = run_specs(specs, jobs=1)
    parallel = run_specs(specs, jobs=2)
    assert [r.model for r in parallel] == [r.model for r in serial]
    for a, b in zip(serial, parallel):
        assert_identical(a, b)
        assert a.as_row() == b.as_row()


def test_mixed_grid_serial_parallel_vectorized_identical():
    """Acceptance grid: backends x precision x power mode, OOM included.

    Three executions of one mixed spec list must agree row-for-row:
    per-token stepping (the ground truth), the serial fast-forward path
    (vectorized decode + trajectory replay), and the process fan-out.
    """
    specs = [
        ExperimentSpec(model="Llama3", batch_size=2, n_runs=1),
        ExperimentSpec(model="Llama3", precision=Precision.INT8,
                       kv_mode="static", batch_size=4, n_runs=1),
        ExperimentSpec(model="MS-Phi2", power_mode="E", batch_size=2,
                       n_runs=1),
        ExperimentSpec(model="Llama3", runtime="gguf", batch_size=2,
                       n_runs=1),
        ExperimentSpec(model="Llama3", runtime="paged", batch_size=2,
                       n_runs=1),
        # Phi-2 at bs=32 / sl=1024 OOMs mid-decode on the 64 GB board.
        ExperimentSpec(model="MS-Phi2", batch_size=32,
                       gen=GenerationSpec(256, 768), n_runs=1),
    ]
    baseline = [run_experiment(s, fast_forward=False) for s in specs]
    assert any(r.oom for r in baseline), "grid must include the OOM cell"
    serial = run_specs(specs, jobs=1)
    parallel = run_specs(specs, jobs=2)
    for base, a, b in zip(baseline, serial, parallel):
        assert_identical(base, a)
        assert_identical(a, b)
        assert a.as_row() == b.as_row()


def test_fastpath_engages_and_matches_allocator_end_state():
    """fast_forward=True must actually take the trajectory fastpath (not
    silently fall back), and leave the allocator in the *exact* state
    per-token stepping leaves it in."""
    from repro.engine.executor import BatchExecutor
    from repro.engine.kernels import StepTimer
    from repro.engine.request import BatchRequest
    from repro.engine.state import EngineState
    from repro.memsys.allocator import CachingAllocator
    from repro.memsys.fastpath import state_fingerprint
    from repro.sim.environment import Environment

    def drive(fast_forward):
        env = Environment()
        timer = StepTimer(get_model("Llama3"),
                          get_device("jetson-orin-agx-64gb"), Precision.FP16)
        alloc = CachingAllocator(int(60e9))
        ex = BatchExecutor(timer, alloc, fast_forward=fast_forward)
        gen = ex.run(env, BatchRequest(batch_size=2,
                                       gen=GenerationSpec(8, 32)),
                     EngineState())
        try:
            ev = next(gen)
            while True:
                env.run(until=ev)
                ev = gen.send(ev._value)
        except StopIteration:
            pass
        return ex, alloc

    slow_ex, slow_alloc = drive(False)
    fast_ex, fast_alloc = drive(True)
    assert slow_ex.fastpath_batches == 0
    assert fast_ex.fastpath_batches == 1
    assert state_fingerprint(fast_alloc) == state_fingerprint(slow_alloc)
