"""Engine reuse semantics: peaks are per-run, not cumulative."""

import pytest

from repro.engine import GenerationSpec, ServingEngine
from repro.hardware import get_device
from repro.models import get_model
from repro.quant.dtypes import Precision


def test_peaks_reset_between_runs(orin):
    eng = ServingEngine(orin, get_model("phi2"), Precision.FP16)
    big = eng.run(batch_size=64, gen=GenerationSpec(16, 16), n_runs=1)
    small = eng.run(batch_size=1, gen=GenerationSpec(16, 16), n_runs=1)
    assert small.incremental_gb < 0.5 * big.incremental_gb


def test_repeated_identical_runs_are_identical(orin):
    eng = ServingEngine(orin, get_model("phi2"), Precision.FP16)
    a = eng.run(batch_size=8, gen=GenerationSpec(8, 16), n_runs=2)
    b = eng.run(batch_size=8, gen=GenerationSpec(8, 16), n_runs=2)
    assert a.mean_latency_s == pytest.approx(b.mean_latency_s)
    assert a.energy_j == pytest.approx(b.energy_j, rel=0.01)
    assert a.incremental_gb == pytest.approx(b.incremental_gb, rel=0.05)


def test_model_bytes_survive_reuse(orin):
    eng = ServingEngine(orin, get_model("phi2"), Precision.FP16)
    eng.run(batch_size=2, gen=GenerationSpec(4, 4), n_runs=1)
    first = eng.tracker.model_bytes
    eng.run(batch_size=4, gen=GenerationSpec(4, 4), n_runs=1)
    assert eng.tracker.model_bytes == first
