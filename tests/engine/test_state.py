"""Engine state handoff to the sampler."""

from repro.engine.state import EngineState
from repro.power.model import ComponentUtilization


def test_starts_idle():
    s = EngineState()
    assert s.phase == "idle"
    assert s.util.gpu_busy == 0.0


def test_set_and_reset():
    s = EngineState()
    util = ComponentUtilization(gpu_compute=0.3, gpu_busy=0.8, mem_bw=0.5,
                                cpu_cores_active=2.0)
    s.set("decode", util)
    assert s.phase == "decode"
    assert s.util.mem_bw == 0.5
    s.set_idle()
    assert s.phase == "idle"
    assert s.util.gpu_busy == 0.0
