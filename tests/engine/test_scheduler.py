"""Request-level serving: static vs continuous batching."""

import copy

import pytest

from repro.engine.scheduler import (
    ContinuousBatchScheduler,
    ServeRequest,
    StaticBatchScheduler,
    poisson_workload,
)
from repro.errors import ExperimentError
from repro.hardware import get_device
from repro.models import get_model
from repro.quant.dtypes import Precision


def make_sched(kind, model="llama", max_batch=8, **kw):
    cls = StaticBatchScheduler if kind == "static" else ContinuousBatchScheduler
    return cls(get_device("jetson-orin-agx-64gb"), get_model(model),
               Precision.FP16, max_batch=max_batch, **kw)


def workload(rate=2.0, n=24, seed=3, out=16):
    return poisson_workload(rate, n, input_tokens=16, output_tokens=out,
                            seed=seed)


class TestWorkloadGen:
    def test_arrivals_sorted_and_seeded(self):
        a = workload(seed=5)
        b = workload(seed=5)
        assert [r.arrival_s for r in a] == [r.arrival_s for r in b]
        assert [r.arrival_s for r in a] == sorted(r.arrival_s for r in a)

    def test_mean_rate_approximates_lambda(self):
        reqs = poisson_workload(10.0, 500, seed=1)
        assert reqs[-1].arrival_s == pytest.approx(50.0, rel=0.25)

    def test_validation(self):
        with pytest.raises(ExperimentError):
            poisson_workload(0.0, 5)
        with pytest.raises(ExperimentError):
            poisson_workload(1.0, 0)


class TestStatic:
    def test_all_requests_complete_with_metrics(self):
        report = make_sched("static").serve(workload())
        assert report.n_requests == 24
        for r in report.requests:
            assert r.finish_s is not None
            assert r.first_token_s is not None
            assert r.ttft_s >= 0
            assert r.latency_s >= r.ttft_s

    def test_batches_bounded_by_max_batch(self):
        report = make_sched("static", max_batch=4).serve(workload())
        assert report.n_requests == 24

    def test_later_arrivals_wait_for_running_batch(self):
        """With a single-slot server, TTFT grows along the queue."""
        reqs = [ServeRequest(i, 0.01 * i, 16, 16) for i in range(4)]
        report = StaticBatchScheduler(
            get_device("jetson-orin-agx-64gb"), get_model("llama"),
            Precision.FP16, max_batch=1, max_wait_s=0.0,
        ).serve(reqs)
        ttfts = [r.ttft_s for r in sorted(report.requests, key=lambda r: r.req_id)]
        assert ttfts == sorted(ttfts)
        assert ttfts[-1] > 3 * ttfts[0] if ttfts[0] > 0 else True


class TestContinuous:
    def test_all_requests_complete(self):
        report = make_sched("continuous").serve(workload())
        assert report.n_requests == 24
        assert report.mean_tpot_s > 0

    def test_beats_static_on_ttft_under_load(self):
        """The iteration-level scheduler admits new requests mid-batch,
        so tail TTFT collapses versus run-to-completion batching."""
        reqs = workload(rate=4.0, n=32, out=32)
        static = make_sched("static").serve(copy.deepcopy(reqs))
        cont = make_sched("continuous").serve(copy.deepcopy(reqs))
        assert cont.p95_ttft_s < static.p95_ttft_s

    def test_respects_kv_budget(self):
        # A tiny budget forces admission control but must still finish.
        sched = make_sched("continuous", max_batch=8,
                           kv_budget_bytes=int(50e6))
        report = sched.serve(workload(n=12))
        assert report.n_requests == 12

    def test_impossible_budget_rejected(self):
        with pytest.raises(ExperimentError):
            make_sched("continuous", model="mistral",
                       kv_budget_bytes=-1)  # explicit nonsense budget
