"""Paged admission in the continuous scheduler."""

import copy

import pytest

from repro.engine.scheduler import ContinuousBatchScheduler, poisson_workload
from repro.hardware import get_device
from repro.models import get_model
from repro.quant.dtypes import Precision


def sched(paged: bool, budget: int = None, max_batch: int = 8):
    return ContinuousBatchScheduler(
        get_device("jetson-orin-agx-64gb"), get_model("llama"),
        Precision.FP16, max_batch=max_batch, paged=paged,
        kv_budget_bytes=budget,
    )


def test_paged_serves_all_requests():
    reqs = poisson_workload(3.0, 16, input_tokens=16, output_tokens=16, seed=2)
    report = sched(paged=True).serve(reqs)
    assert report.n_requests == 16
    assert report.discipline == "continuous-paged"


def test_paged_needs_less_memory_for_same_concurrency():
    """Contiguous admission reserves each sequence's *final* length up
    front; the block manager only holds blocks for generated tokens, so
    its peak pool usage sits well below the contiguous reservation."""
    from repro.memsys.allocator import CachingAllocator
    from repro.memsys.paged import PagedKVCache
    from repro.models import get_model

    arch = get_model("llama")
    spec = arch.kv_cache_spec()
    n_seqs, inp, out = 16, 16, 48
    full_reservation = n_seqs * spec.bytes_total(1, inp + out)

    alloc = CachingAllocator(int(1e9))
    cache = PagedKVCache(spec, alloc, full_reservation, block_tokens=16)
    # All sequences resident, decoding in lockstep (the worst case).
    live = set(range(n_seqs))
    for s in live:
        cache.add_sequence(s, inp)
    for _ in range(out):
        for s in list(live):
            cache.append_token(s)
        # Staggered completion: half the sequences are short.
        if 0 in live and cache.seq_tokens(0) == inp + out // 2:
            for s in range(0, n_seqs, 2):
                cache.release_sequence(s)
                live.discard(s)
    peak = cache.stats.peak_used_blocks * cache.bytes_per_block
    assert peak < 0.85 * full_reservation


def test_preemption_path_still_completes_everything():
    # A pool so small that growth must preempt: everything still finishes.
    budget = int(15e6)
    reqs = poisson_workload(20.0, 12, input_tokens=16, output_tokens=64, seed=6)
    report = sched(paged=True, budget=budget, max_batch=12).serve(reqs)
    assert report.n_requests == 12
    for r in report.requests:
        assert r.finish_s is not None
        assert r.ttft_s >= 0
