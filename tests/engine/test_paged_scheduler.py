"""Paged admission in the continuous scheduler."""

import copy

import pytest

from repro.engine.scheduler import (
    ContinuousBatchScheduler,
    ServeRequest,
    poisson_workload,
)
from repro.hardware import get_device
from repro.models import get_model
from repro.quant.dtypes import Precision


def sched(paged: bool, budget: int = None, max_batch: int = 8):
    return ContinuousBatchScheduler(
        get_device("jetson-orin-agx-64gb"), get_model("llama"),
        Precision.FP16, max_batch=max_batch, paged=paged,
        kv_budget_bytes=budget,
    )


def test_paged_serves_all_requests():
    reqs = poisson_workload(3.0, 16, input_tokens=16, output_tokens=16, seed=2)
    report = sched(paged=True).serve(reqs)
    assert report.n_requests == 16
    assert report.discipline == "continuous-paged"


def test_paged_needs_less_memory_for_same_concurrency():
    """Contiguous admission reserves each sequence's *final* length up
    front; the block manager only holds blocks for generated tokens, so
    its peak pool usage sits well below the contiguous reservation."""
    from repro.memsys.allocator import CachingAllocator
    from repro.memsys.paged import PagedKVCache
    from repro.models import get_model

    arch = get_model("llama")
    spec = arch.kv_cache_spec()
    n_seqs, inp, out = 16, 16, 48
    full_reservation = n_seqs * spec.bytes_total(1, inp + out)

    alloc = CachingAllocator(int(1e9))
    cache = PagedKVCache(spec, alloc, full_reservation, block_tokens=16)
    # All sequences resident, decoding in lockstep (the worst case).
    live = set(range(n_seqs))
    for s in live:
        cache.add_sequence(s, inp)
    for _ in range(out):
        for s in list(live):
            cache.append_token(s)
        # Staggered completion: half the sequences are short.
        if 0 in live and cache.seq_tokens(0) == inp + out // 2:
            for s in range(0, n_seqs, 2):
                cache.release_sequence(s)
                live.discard(s)
    peak = cache.stats.peak_used_blocks * cache.bytes_per_block
    assert peak < 0.85 * full_reservation


def test_preemption_path_still_completes_everything():
    # A pool so small that growth must preempt: everything still finishes.
    budget = int(15e6)
    reqs = poisson_workload(20.0, 12, input_tokens=16, output_tokens=64, seed=6)
    report = sched(paged=True, budget=budget, max_batch=12).serve(reqs)
    assert report.n_requests == 12
    for r in report.requests:
        assert r.finish_s is not None
        assert r.ttft_s >= 0


def _bytes_per_block(block_tokens: int = 16) -> int:
    spec = get_model("llama").kv_cache_spec()
    return spec.bytes_per_token_per_layer * spec.n_layers * block_tokens


class TestAdmissionBoundary:
    """Block-granular admission: exact fit admits, one block over rejects."""

    def _cache(self, n_blocks: int, block_tokens: int = 16):
        from repro.memsys.allocator import CachingAllocator
        from repro.memsys.paged import PagedKVCache

        spec = get_model("llama").kv_cache_spec()
        pool = n_blocks * _bytes_per_block(block_tokens)
        return PagedKVCache(spec, CachingAllocator(pool + 32 * 2**20), pool,
                            block_tokens=block_tokens)

    def test_admit_exactly_at_capacity(self):
        cache = self._cache(n_blocks=4)
        assert cache.can_admit(4 * 16)
        cache.add_sequence(0, 4 * 16)
        assert cache.free_blocks == 0

    def test_reject_one_token_over_block_capacity(self):
        cache = self._cache(n_blocks=4)
        # 65 tokens round up to a fifth block: one block over the pool.
        assert not cache.can_admit(4 * 16 + 1)
        from repro.errors import OutOfMemoryError

        with pytest.raises(OutOfMemoryError):
            cache.add_sequence(0, 4 * 16 + 1)
        # The failed admission must not leak blocks.
        assert cache.free_blocks == 4
        cache.add_sequence(1, 4 * 16)

    def test_scheduler_serves_request_that_exactly_fills_pool(self):
        # Final sequence length 16 + 48 = 64 tokens = exactly 4 blocks.
        budget = 4 * _bytes_per_block()
        reqs = [ServeRequest(req_id=0, arrival_s=0.0, input_tokens=16,
                             output_tokens=48)]
        report = sched(paged=True, budget=budget, max_batch=1).serve(reqs)
        assert report.requests[0].finish_s is not None
        assert report.requests[0].generated == 48


class TestPreemption:
    """preempt_youngest: the youngest sequence is evicted and recomputed."""

    def _three_requests(self):
        # Three identical 16-in/32-out sequences; r2 arrives a beat
        # late.  A 7-block pool admits all three prompts, but when r0
        # and r1 cross the 33-token block boundary in the same decode
        # iteration the pool is dry and r2 — the youngest — is evicted.
        # After r0/r1 finish, r2 re-runs from scratch (3 blocks <= 7).
        return [
            ServeRequest(req_id=0, arrival_s=0.0, input_tokens=16,
                         output_tokens=32),
            ServeRequest(req_id=1, arrival_s=0.0, input_tokens=16,
                         output_tokens=32),
            ServeRequest(req_id=2, arrival_s=0.1, input_tokens=16,
                         output_tokens=32),
        ]

    def test_youngest_is_preempted_and_still_completes(self):
        tight = sched(paged=True, budget=7 * _bytes_per_block(),
                      max_batch=3).serve(self._three_requests())
        r0, r1, r2 = tight.requests
        assert all(r.generated == 32 for r in tight.requests)
        # r2 has the same service demand and arrived only 0.1 s late;
        # it finishes a full re-run after the others only because it
        # was evicted and recomputed from scratch.
        assert r2.finish_s > r0.finish_s + 1.0
        assert r2.finish_s > r1.finish_s + 1.0

    def test_preemption_recompute_costs_time(self):
        tight = sched(paged=True, budget=7 * _bytes_per_block(),
                      max_batch=3).serve(self._three_requests())
        ample = sched(paged=True, budget=64 * _bytes_per_block(),
                      max_batch=3).serve(self._three_requests())
        assert all(r.finish_s is not None for r in ample.requests)
        # Recompute-style preemption re-pays r2's prefill and decode.
        assert tight.makespan_s > ample.makespan_s

    def test_unpreemptable_oom_raises(self):
        from repro.errors import OutOfMemoryError

        # A single sequence outgrowing the whole pool has no victim to
        # evict: the scheduler must surface the OOM, not loop.
        reqs = [ServeRequest(req_id=0, arrival_s=0.0, input_tokens=16,
                             output_tokens=256)]
        with pytest.raises(OutOfMemoryError):
            sched(paged=True, budget=2 * _bytes_per_block(),
                  max_batch=1).serve(reqs)


class TestBlockRoundedAdmissionBoundary:
    """Regression: a prompt needing exactly the remaining blocks admits.

    The old admission check asked for blocks covering ``input + 1``
    tokens, so a prompt that exactly filled the free pool was refused
    until a running sequence finished — an off-by-one that serialised
    exactly-full admissions.  Decode growth is handled by preemption,
    not by reserving the extra block up front.
    """

    def _sched_with_blocks(self, n_blocks, max_batch=8):
        from repro.models import get_model

        arch = get_model("llama")
        probe = arch.kv_cache_spec()
        bpb = probe.bytes_per_token_per_layer * probe.n_layers * 16
        return sched(paged=True, budget=n_blocks * bpb, max_batch=max_batch)

    def test_exactly_full_pool_admits(self):
        s = self._sched_with_blocks(8)
        # A holds 3 blocks for its whole life (48-token cap, 16 rounds).
        a = ServeRequest(req_id=0, arrival_s=0.0, input_tokens=40,
                         output_tokens=8)
        # B's 80-token prompt needs exactly the 5 remaining blocks.
        b = ServeRequest(req_id=1, arrival_s=0.05, input_tokens=80,
                         output_tokens=16)
        report = s.serve([a, b])
        assert report.n_requests == 2
        assert a.finish_s is not None and b.finish_s is not None
        # The boundary admission ran B concurrently with A: its first
        # token streams long before A drains (pre-fix, B waited for A).
        assert b.first_token_s < a.finish_s

    def test_over_full_prompt_still_waits(self):
        s = self._sched_with_blocks(8)
        a = ServeRequest(req_id=0, arrival_s=0.0, input_tokens=40,
                         output_tokens=8)
        # 81 tokens -> 6 blocks > the 5 free: must wait for A to finish.
        b = ServeRequest(req_id=1, arrival_s=0.05, input_tokens=81,
                         output_tokens=8)
        report = s.serve([a, b])
        assert report.n_requests == 2
        assert b.first_token_s > a.finish_s
