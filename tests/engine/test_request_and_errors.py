"""Request/result dataclasses and the error hierarchy."""

import pytest

from repro.engine.request import BatchRequest, BatchResult, GenerationSpec
from repro.errors import (
    ExperimentError,
    OutOfMemoryError,
    QuantizationError,
    ReproError,
)


class TestGenerationSpec:
    def test_totals(self):
        gen = GenerationSpec(32, 64)
        assert gen.total_tokens == 96

    def test_validation(self):
        with pytest.raises(ExperimentError):
            GenerationSpec(0, 64)
        with pytest.raises(ExperimentError):
            GenerationSpec(32, 0)


class TestBatchRequest:
    def test_total_tokens(self):
        req = BatchRequest(batch_size=4, gen=GenerationSpec(8, 8))
        assert req.total_tokens == 64

    def test_validation(self):
        with pytest.raises(ExperimentError):
            BatchRequest(batch_size=0, gen=GenerationSpec(1, 1))


class TestBatchResult:
    def test_throughput_definition(self):
        req = BatchRequest(batch_size=2, gen=GenerationSpec(16, 16))
        res = BatchResult(request=req, latency_s=4.0, prefill_s=1.0,
                          decode_s=3.0, step_seconds=[0.1] * 16)
        assert res.throughput_tok_s == pytest.approx(64 / 4.0)
        assert res.time_per_output_token_s == pytest.approx(0.1)

    def test_oom_result_reports_zero(self):
        req = BatchRequest(batch_size=2, gen=GenerationSpec(16, 16))
        res = BatchResult(request=req, latency_s=1.0, prefill_s=0, decode_s=0,
                          oom=True)
        assert res.throughput_tok_s == 0.0
        assert res.time_per_output_token_s is None


class TestErrors:
    def test_hierarchy(self):
        for exc in (OutOfMemoryError(1, 0), QuantizationError("x"),
                    ExperimentError("y")):
            assert isinstance(exc, ReproError)

    def test_oom_message_carries_sizes(self):
        exc = OutOfMemoryError(requested_bytes=2 * 2**30,
                               available_bytes=2**30, context="weights")
        assert "2.00 GiB" in str(exc)
        assert "weights" in str(exc)
        assert exc.requested_bytes == 2 * 2**30

    def test_oom_is_catchable_as_reproerror(self):
        with pytest.raises(ReproError):
            raise OutOfMemoryError(10, 5)
