"""Thermal wiring in ClusterNode: throttling emerges from dissipation."""

import pytest

from repro.cluster import ClusterRequest
from repro.cluster.node import ClusterNode
from repro.hardware import get_device
from repro.hardware.thermal import ThermalModel
from repro.models import get_model
from repro.quant.dtypes import Precision
from repro.sim.environment import Environment

ORIN64 = "jetson-orin-agx-64gb"


def hot_thermal():
    """An aggressive RC model: a MAXN decode stream saturates past the
    throttle point within seconds (real boards take minutes; the test
    compresses tau and the thermal resistance, not the mechanism)."""
    return ThermalModel(tau_s=5.0, r_thermal_c_per_w=2.0,
                        throttle_temp_c=60.0, resume_temp_c=50.0)


def make_node(env, thermal, **kw):
    return ClusterNode(env, 0, get_device(ORIN64), get_model("llama"),
                       Precision.FP16, power_mode="MAXN", thermal=thermal,
                       **kw)


def req(req_id, out=256, arrival=0.0):
    return ClusterRequest(req_id=req_id, arrival_s=arrival,
                          input_tokens=64, output_tokens=out)


class TestEmergentThrottle:
    def test_sustained_maxn_throttles_and_recovers(self):
        env = Environment()
        node = make_node(env, hot_thermal(), max_batch=8)
        base_hz = node.device.gpu.freq_hz
        for i in range(8):
            node.submit(req(i, out=512))
        env.run(until=2_000.0)

        # Phase 1: sustained load crossed the throttle point and the
        # governor actually stepped the GPU clock down.
        assert any(on for _, on in node.throttle_log), \
            "sustained MAXN load never throttled"
        assert node.thermal.temp_c > node.thermal.resume_temp_c
        assert all(r.finish_s is not None for r in
                   node.completed), "workload did not drain"

        # Phase 2: a long idle gap cools the junction; the next step's
        # accounting advances the RC node over the gap at idle watts and
        # the governor restores the base clock.
        assert node.thermal.throttled
        late = req(99, out=4, arrival=env.now + 300.0)
        node.submit(late)
        env.run(until=env.now + 400.0)
        assert not node.thermal.throttled, "idle gap did not recover"
        assert node.device.gpu.freq_hz == pytest.approx(base_hz)
        transitions = [on for _, on in node.throttle_log]
        assert True in transitions and False in transitions

    def test_throttle_slows_decode(self):
        def drain(thermal):
            env = Environment()
            node = make_node(env, thermal, max_batch=8)
            reqs = [req(i, out=512) for i in range(8)]
            for r in reqs:
                node.submit(r)
            env.run(until=5_000.0)
            assert all(r.finish_s is not None for r in reqs)
            return max(r.finish_s for r in reqs)

        cool = drain(ThermalModel())  # stock model: never throttles here
        hot = drain(hot_thermal())
        assert hot > cool * 1.05

    def test_stock_thermal_model_stays_cool_on_short_runs(self):
        """Regression guard: the default RC constants must not throttle
        the short workloads every existing cluster test runs."""
        env = Environment()
        node = make_node(env, ThermalModel(), max_batch=8)
        for i in range(8):
            node.submit(req(i, out=128))
        env.run(until=2_000.0)
        assert node.throttle_log == []
        assert node.device.gpu.freq_hz == node._base_gpu_hz


class TestModeComposition:
    def test_apply_mode_rebases_throttle(self):
        """A throttled node switching nvpmodel rungs stays throttled
        relative to the *new* base clock."""
        from repro.power.modes import get_power_mode

        env = Environment()
        node = make_node(env, hot_thermal(), max_batch=8)
        for i in range(8):
            node.submit(req(i, out=512))
        env.run(until=2_000.0)
        assert node.thermal.throttled
        node.apply_mode(get_power_mode("A"))  # 0.8 GHz rung
        expected = max(node._base_gpu_hz * node.thermal.throttle_freq_ratio,
                       node.device.gpu.min_freq_hz)
        assert node.device.gpu.freq_hz == pytest.approx(expected)
        assert node._base_gpu_hz == pytest.approx(
            get_power_mode("A").gpu_freq_hz)

    def test_restart_resets_junction(self):
        env = Environment()
        node = make_node(env, hot_thermal(), max_batch=8)
        for i in range(8):
            node.submit(req(i, out=512))
        env.run(until=2_000.0)
        assert node.thermal.throttled
        node.crash()
        node.restart()
        assert not node.thermal.throttled
        assert node.thermal.temp_c == node.thermal.ambient_c
        assert node.device.gpu.freq_hz == node._base_gpu_hz
