"""Resilience mechanisms: crash recovery, retries, OOM pressure, fallback."""

import pytest

from repro.cluster import (ClusterRequest, EdgeCluster, FleetSpec,
                           NodeSpec, SLOSpec)
from repro.cluster.node import ClusterNode
from repro.cluster.workload import poisson_workload
from repro.errors import ConfigError
from repro.faults import (
    ChaosSpec,
    FallbackConfig,
    FaultClass,
    FaultEpisode,
    FaultInjector,
    FaultScheduleSpec,
    PrecisionFallback,
    RetryBudget,
    RetryPolicy,
    run_chaos,
    schedule_from_episodes,
)
from repro.hardware import get_device
from repro.models import get_model
from repro.quant.dtypes import Precision
from repro.sim.environment import Environment

ORIN64 = "jetson-orin-agx-64gb"


def make_node(env, node_id, precision=Precision.FP16, **kw):
    return ClusterNode(env, node_id, get_device(ORIN64), get_model("llama"),
                       precision, **kw)


def req(req_id=0, inp=32, out=32, arrival=0.0):
    return ClusterRequest(req_id=req_id, arrival_s=arrival,
                          input_tokens=inp, output_tokens=out)


def crash_cluster(down_s=10.0, start_s=2.0, n_requests=30, rate=4.0):
    """Two-node fleet with a scripted node-0 crash; returns (report, sched)."""
    cluster = EdgeCluster.of(FleetSpec.of(
        [NodeSpec(ORIN64), NodeSpec(ORIN64)], policy="jsq"))
    sched = schedule_from_episodes([
        FaultEpisode(0, 0, FaultClass.CRASH, start_s, down_s, down_s),
    ])
    cluster.attach_injector(FaultInjector(cluster.env, cluster.nodes, sched))
    report = cluster.run(poisson_workload(rate, n_requests, seed=1))
    return report, cluster


class TestRetryPolicy:
    def test_backoff_is_capped_exponential(self):
        p = RetryPolicy(base_backoff_s=0.25, cap_backoff_s=1.0)
        assert [p.delay_s(k) for k in range(4)] == [0.25, 0.5, 1.0, 1.0]

    def test_budget_exhausts(self):
        b = RetryBudget(2)
        assert b.take() and b.take() and not b.take()
        assert b.exhausted and b.spent == 2

    def test_unlimited_budget(self):
        b = RetryBudget(None)
        assert all(b.take() for _ in range(100)) and not b.exhausted

    @pytest.mark.parametrize("bad", [
        dict(max_retries=-1),
        dict(base_backoff_s=0.0),
        dict(base_backoff_s=2.0, cap_backoff_s=1.0),
        dict(retry_budget=-1),
    ])
    def test_validation(self, bad):
        with pytest.raises(ConfigError):
            RetryPolicy(**bad)


class TestCrashRecovery:
    def test_crash_orphans_requeue_and_finish(self):
        report, cluster = crash_cluster()
        # The crash happened and was repaired.
        node0 = cluster.nodes[0]
        assert len(node0.crash_log) == 1
        assert node0.crash_log[0].repair_s == pytest.approx(10.0)
        # Orphans were re-placed and the run still completed everything.
        assert report.requeues > 0
        assert report.completed + report.rejected == report.n_requests
        assert report.completed > 0

    def test_availability_below_one_and_consistent(self):
        report, cluster = crash_cluster(down_s=10.0)
        expected = 1.0 - 10.0 / (2 * report.makespan_s)
        assert report.availability < 1.0
        assert report.availability == pytest.approx(expected, rel=1e-6)
        assert report.mttr_s == pytest.approx(10.0)

    def test_kv_loss_is_billed_as_lost_tokens(self):
        report, _ = crash_cluster(start_s=4.0, rate=6.0)
        replayed = [r for r in report.requests if r.replays > 0]
        if replayed:  # mid-decode victims existed at the crash instant
            assert all(r.lost_tokens > 0 for r in replayed)
            assert report.lost_tokens == sum(r.lost_tokens
                                             for r in report.requests)

    def test_resilience_columns_in_row(self):
        report, _ = crash_cluster()
        row = report.as_row()
        for col in ("availability", "mttr_s", "retries", "requeues"):
            assert col in row

    def test_crashed_node_is_ejected_then_readmitted(self):
        env = Environment()
        node = make_node(env, 0)
        node.crash()
        assert not node.accepts(req())
        assert not node.submit(req())
        node.restart()
        assert node.accepts(req())


class TestRequeueCap:
    def test_requeues_capped_then_rejected(self):
        """A single node that dies with work and never comes back forces
        rejection through the requeue cap rather than an infinite loop."""
        cluster = EdgeCluster.of(
            FleetSpec.of([NodeSpec(ORIN64)], policy="round-robin"),
            retry=RetryPolicy(max_retries=0, max_requeues=1),
        )
        sched = schedule_from_episodes([
            FaultEpisode(0, 0, FaultClass.CRASH, 1.0, 10_000.0, 10_000.0),
        ])
        cluster.attach_injector(
            FaultInjector(cluster.env, cluster.nodes, sched))
        report = cluster.run(poisson_workload(5.0, 10, seed=0,
                                              output_tokens=256))
        assert report.completed + report.rejected == 10
        assert report.rejected > 0
        assert all(r.requeues <= 1 for r in report.requests)


class TestRetryBudgetFleetWide:
    def test_spent_budget_fails_fast(self):
        cluster = EdgeCluster.of(
            FleetSpec.of([NodeSpec(ORIN64, max_queue=1)], policy="jsq"),
            retry=RetryPolicy(max_retries=3, retry_budget=0),
        )
        report = cluster.run(poisson_workload(50.0, 40, seed=0,
                                              output_tokens=128))
        # With zero budget no placement ever backs off: every failed
        # first attempt rejects immediately.
        assert all(r.retries <= 1 for r in report.requests)
        assert cluster._retry_budget.spent == 0


class TestOOMPressure:
    def test_shrink_evicts_and_recovery_completes(self):
        env = Environment()
        node = make_node(env, 0, max_batch=4)
        reqs = [req(i, inp=256, out=32) for i in range(4)]
        for r in reqs:
            assert node.submit(r)
        env.run(until=5.0)
        evicted = node.set_kv_shrink(0.001)
        assert evicted, "shrinking below the working set must evict"
        assert all(r.generated == 0 for r in evicted)
        assert node.kv_budget < node._kv_budget_base
        # Pressure lifts; everything replays to completion.
        node.set_kv_shrink(1.0)
        env.run(until=2_000.0)
        assert all(r.finish_s is not None for r in reqs)

    def test_shrink_validation(self):
        env = Environment()
        node = make_node(env, 0)
        with pytest.raises(ConfigError):
            node.set_kv_shrink(0.0)


class TestStraggler:
    def test_slowdown_stretches_wall_time(self):
        def run_once(slowdown):
            env = Environment()
            node = make_node(env, 0)
            node.slowdown = slowdown
            r = req(0, inp=64, out=64)
            node.submit(r)
            env.run(until=10_000.0)
            return r.finish_s

        assert run_once(3.0) == pytest.approx(3.0 * run_once(1.0))


class TestPrecisionFallback:
    def _pressured_node(self, env):
        node = make_node(env, 0, precision=Precision.INT8, max_batch=2,
                         max_queue=256)
        for i in range(220):
            node.submit(req(i, inp=1024, out=512))
        return node

    def test_sustained_pressure_degrades_to_int4(self):
        env = Environment()
        node = self._pressured_node(env)
        assert node.kv_pressure > 0.5
        fb = PrecisionFallback(env, [node], FallbackConfig(
            pressure_threshold=0.5, patience=2, period_s=0.5))
        budget_before = node.kv_budget
        fb.start()
        env.run(until=30.0)
        assert node.precision is Precision.INT4
        assert node.kv_budget > budget_before  # smaller weights, more KV
        assert fb.history and fb.history[0].from_precision == "int8"
        assert fb.history[0].to_precision == "int4"

    def test_fp16_never_degrades_by_default(self):
        env = Environment()
        node = make_node(env, 0, precision=Precision.FP16, max_batch=2,
                         max_queue=256)
        for i in range(120):
            node.submit(req(i, inp=1024, out=512))
        fb = PrecisionFallback(env, [node], FallbackConfig(
            pressure_threshold=0.1, patience=1, period_s=0.5))
        fb.start()
        env.run(until=10.0)
        assert node.precision is Precision.FP16
        assert not fb.history

    def test_patience_below_one_rejected(self):
        with pytest.raises(ConfigError):
            FallbackConfig(patience=0)


class TestChaosEndToEnd:
    SPEC = ChaosSpec(
        faults=FaultScheduleSpec(seed=5, horizon_s=30.0, n_nodes=2,
                                 crash_rate_per_min=2.0, crash_downtime_s=5.0,
                                 straggler_rate_per_min=1.0),
        n_requests=24, rate_per_s=2.0,
    )

    def test_report_is_reproducible(self):
        a, b = run_chaos(self.SPEC), run_chaos(self.SPEC)
        assert a.as_row() == b.as_row()
        assert a.injected_trace == b.injected_trace
        assert a.cache_key == b.cache_key

    def test_fault_free_twin_is_perfect(self):
        r = run_chaos(self.SPEC)
        assert r.baseline.availability == 1.0  # exact, no float drift
        assert r.baseline.mttr_s == 0.0
        assert r.baseline.requeues == 0

    def test_faulted_run_shows_degradation(self):
        r = run_chaos(self.SPEC)
        assert r.availability < 1.0
        assert r.mttr_s > 0.0
        assert r.retry_amplification >= 1.0
        nonzero = {c for c, j in r.energy_overhead_by_class.items() if j}
        assert nonzero <= {"crash", "straggler"}  # only scheduled classes
