"""Deterministic fault schedules: seeding, independence, fingerprints."""

import pytest

from repro.errors import ConfigError
from repro.faults import (
    CLASS_ORDER,
    ChaosSpec,
    FaultClass,
    FaultEpisode,
    FaultScheduleSpec,
    generate_schedule,
    schedule_from_episodes,
)

#: Three fault classes with non-trivial rates (the property-test matrix).
ACTIVE = dict(crash_rate_per_min=1.5, oom_rate_per_min=1.0,
              straggler_rate_per_min=2.0)


def spec(seed=0, **kw):
    base = dict(seed=seed, horizon_s=90.0, n_nodes=3, **ACTIVE)
    base.update(kw)
    return FaultScheduleSpec(**base)


class TestDeterminism:
    @pytest.mark.parametrize("seed", [0, 1, 17, 123456])
    def test_same_seed_identical_trace(self, seed):
        a, b = generate_schedule(spec(seed)), generate_schedule(spec(seed))
        assert a.trace() == b.trace()
        assert a.episodes == b.episodes

    @pytest.mark.parametrize("seed", [0, 1, 17])
    def test_same_seed_identical_fingerprint(self, seed):
        assert (generate_schedule(spec(seed)).fingerprint()
                == generate_schedule(spec(seed)).fingerprint())

    def test_different_seed_different_trace(self):
        traces = {tuple(generate_schedule(spec(s)).trace()) for s in range(6)}
        assert len(traces) == 6

    def test_different_seed_different_fingerprint(self):
        fps = {generate_schedule(spec(s)).fingerprint() for s in range(6)}
        assert len(fps) == 6

    def test_chaos_cache_key_tracks_seed(self):
        """The cache key is stable per seed and distinct across seeds."""
        k = ChaosSpec(faults=spec(3, n_nodes=2)).cache_key()
        assert k == ChaosSpec(faults=spec(3, n_nodes=2)).cache_key()
        assert k != ChaosSpec(faults=spec(4, n_nodes=2)).cache_key()

    def test_cache_key_sees_workload_too(self):
        fs = spec(0, n_nodes=2)
        assert (ChaosSpec(faults=fs, workload_seed=0).cache_key()
                != ChaosSpec(faults=fs, workload_seed=1).cache_key())


class TestStreamIndependence:
    @staticmethod
    def _key(e):
        # Episode ids are a global counter, so they shift when streams
        # are added; the *draws* are what independence is about.
        return (e.node_id, e.fault, e.start_s, e.duration_s, e.magnitude)

    def test_adding_a_class_leaves_other_streams_alone(self):
        """Per-(node, class) substreams: enabling thermal episodes must
        not move a single crash/oom/straggler episode."""
        base = generate_schedule(spec(7))
        more = generate_schedule(spec(7, thermal_rate_per_min=1.0))
        for cls in (FaultClass.CRASH, FaultClass.OOM, FaultClass.STRAGGLER):
            assert ([self._key(e) for e in base.episodes_of(cls)]
                    == [self._key(e) for e in more.episodes_of(cls)])
        assert more.episodes_of(FaultClass.THERMAL)

    def test_adding_a_node_leaves_existing_nodes_alone(self):
        small = generate_schedule(spec(7, n_nodes=2))
        big = generate_schedule(spec(7, n_nodes=3))
        for cls in CLASS_ORDER:
            assert ([self._key(e) for e in small.episodes_of(cls)]
                    == [self._key(e) for e in big.episodes_of(cls)
                        if e.node_id < 2])


class TestWellFormed:
    def test_episodes_never_overlap_per_node_and_class(self):
        sched = generate_schedule(spec(11, horizon_s=300.0))
        for node in range(3):
            for cls in CLASS_ORDER:
                eps = sorted((e for e in sched.episodes_of(cls)
                              if e.node_id == node), key=lambda e: e.start_s)
                for a, b in zip(eps, eps[1:]):
                    assert a.end_s <= b.start_s

    def test_events_sorted_and_paired(self):
        sched = generate_schedule(spec(2))
        times = [e.time_s for e in sched.events]
        assert times == sorted(times)
        begins = {e.episode_id for e in sched.events if e.action == "begin"}
        ends = {e.episode_id for e in sched.events if e.action == "end"}
        assert begins == ends == {e.episode_id for e in sched.episodes}

    def test_min_duration_clips(self):
        sched = generate_schedule(spec(5, min_duration_s=3.0))
        assert all(e.duration_s >= 3.0 for e in sched.episodes)

    def test_zero_rates_empty_schedule(self):
        sched = generate_schedule(FaultScheduleSpec(seed=1))
        assert sched.episodes == () and sched.events == ()


class TestHandWritten:
    def test_from_episodes_roundtrip(self):
        eps = [FaultEpisode(0, 0, FaultClass.CRASH, 5.0, 10.0, 10.0),
               FaultEpisode(1, 1, FaultClass.STRAGGLER, 2.0, 4.0, 2.5)]
        sched = schedule_from_episodes(eps)
        assert sched.episodes == tuple(eps)
        assert len(sched.events) == 4
        # straggler.begin(2) < crash.begin(5) < straggler.end(6) < crash.end(15)
        assert [e.action for e in sched.events] == [
            "begin", "begin", "end", "end"]

    def test_from_episodes_distinct_fingerprints(self):
        a = schedule_from_episodes(
            [FaultEpisode(0, 0, FaultClass.CRASH, 5.0, 10.0, 10.0)])
        b = schedule_from_episodes(
            [FaultEpisode(0, 0, FaultClass.CRASH, 6.0, 10.0, 10.0)])
        assert a.fingerprint() != b.fingerprint()

    def test_from_episodes_rejects_generative_spec(self):
        with pytest.raises(ConfigError):
            schedule_from_episodes(
                [FaultEpisode(0, 0, FaultClass.CRASH, 5.0, 10.0, 10.0)],
                spec=spec(0),
            )

    def test_from_episodes_rejects_out_of_fleet_node(self):
        with pytest.raises(ConfigError):
            schedule_from_episodes(
                [FaultEpisode(0, 9, FaultClass.CRASH, 5.0, 10.0, 10.0)],
                spec=FaultScheduleSpec(n_nodes=2),
            )


class TestSpecValidation:
    @pytest.mark.parametrize("bad", [
        dict(horizon_s=0.0),
        dict(n_nodes=0),
        dict(crash_rate_per_min=-1.0),
        dict(oom_shrink=0.0),
        dict(oom_shrink=1.5),
        dict(straggler_slowdown=0.5),
        dict(thermal_ambient_delta_c=-5.0),
        dict(brownout_mode="NOPE"),
        dict(min_duration_s=0.0),
    ])
    def test_rejects(self, bad):
        with pytest.raises(ConfigError):
            FaultScheduleSpec(**bad)
