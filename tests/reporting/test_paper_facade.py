"""Programmatic artifact regeneration facade."""

import pytest

from repro.errors import ExperimentError
from repro.reporting.paper import artifacts, regenerate


def test_registry_covers_every_paper_artifact():
    ids = artifacts()
    for t in ("table1", "table2", "table3", "table4", "table5", "table6",
              "table7"):
        assert t in ids
    for f in (f"fig{i}" for i in range(1, 12)):
        assert f in ids


def test_analytic_artifacts_regenerate():
    t1 = regenerate("table1")
    assert len(t1) == 4 and "fp16_gb" in t1[0]
    t2 = regenerate("table2")
    assert [r["mode"] for r in t2][0] == "MAXN"
    t3 = regenerate("table3")
    assert len(t3) == 4


def test_simulated_artifact_regenerates():
    rows = regenerate("fig5", n_runs=1)
    assert len(rows) == 4 * 9  # four models x nine power modes
    assert {"power_mode", "latency_s", "power_w"} <= set(rows[0])


def test_unknown_artifact_rejected():
    with pytest.raises(ExperimentError, match="unknown artifact"):
        regenerate("fig99")
    with pytest.raises(ExperimentError):
        regenerate("table1", n_runs=0)
