"""Tables, figures, export, comparisons."""

import json

import pytest

from repro.errors import ReproError
from repro.reporting import (
    ascii_bars,
    ascii_lines,
    compare_rows,
    deviation_summary,
    format_table,
    markdown_table,
    write_csv,
    write_json,
)

ROWS = [
    {"model": "A", "lat": 1.5, "oom": False},
    {"model": "B", "lat": None, "oom": True},
]


class TestTables:
    def test_format_table_aligns_and_marks_oom(self):
        out = format_table(ROWS, title="perf")
        lines = out.splitlines()
        assert lines[0] == "perf"
        assert "OOM" in out
        assert "1.50" in out

    def test_column_selection_and_order(self):
        out = format_table(ROWS, columns=["lat", "model"])
        assert out.splitlines()[0].startswith("lat")

    def test_markdown_table(self):
        md = markdown_table(ROWS)
        assert md.startswith("| model | lat | oom |")
        assert "| B | OOM | yes |" in md

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            format_table([])


class TestFigures:
    def test_lines_renders_all_series(self):
        out = ascii_lines(
            {"tp": [10, 20, None, 40], "lat": [1, 2, 3, 4]},
            x_labels=["1", "2", "4", "8"], title="fig",
        )
        assert "fig" in out and "legend:" in out
        assert "o=tp" in out and "x=lat" in out

    def test_log_scale(self):
        out = ascii_lines({"s": [1, 10, 100]}, ["a", "b", "c"], log_y=True)
        assert "(log y)" in out

    def test_length_mismatch_rejected(self):
        with pytest.raises(ReproError):
            ascii_lines({"s": [1, 2]}, ["a"])

    def test_bars_with_oom(self):
        out = ascii_bars({"MAXN": 10.0, "H": None}, unit="W")
        assert "OOM" in out and "10W" in out.replace(" ", "")

    def test_all_missing_rejected(self):
        with pytest.raises(ReproError):
            ascii_lines({"s": [None]}, ["a"])


class TestExport:
    def test_csv_roundtrip(self, tmp_path):
        path = write_csv(tmp_path / "out.csv", ROWS)
        text = path.read_text()
        assert text.splitlines()[0] == "model,lat,oom"
        assert "A,1.5,False" in text

    def test_json_writes_pretty(self, tmp_path):
        path = write_json(tmp_path / "deep/out.json", {"x": [1, 2]})
        assert json.loads(path.read_text()) == {"x": [1, 2]}

    def test_empty_csv_rejected(self, tmp_path):
        with pytest.raises(ReproError):
            write_csv(tmp_path / "x.csv", [])


class TestCompare:
    PAPER = [
        {"model": "A", "bs": 1, "lat": 10.0},
        {"model": "A", "bs": 2, "lat": None},
    ]
    OURS = [
        {"model": "A", "bs": 1, "lat": 11.0},
        {"model": "A", "bs": 2, "lat": None},
    ]

    def test_compare_computes_relative_deviation(self):
        rows = compare_rows(self.PAPER, self.OURS, ["model", "bs"], ["lat"])
        assert rows[0]["lat_dev"] == pytest.approx(0.1)
        assert rows[0]["match"] is True

    def test_oom_agreement_flag(self):
        rows = compare_rows(self.PAPER, self.OURS, ["model", "bs"], ["lat"])
        assert rows[1]["lat_dev"] is None
        assert rows[1]["match"] is True
        ours_bad = [dict(self.OURS[0]), {"model": "A", "bs": 2, "lat": 5.0}]
        rows = compare_rows(self.PAPER, ours_bad, ["model", "bs"], ["lat"])
        assert rows[1]["match"] is False

    def test_summary_stats(self):
        rows = compare_rows(self.PAPER, self.OURS, ["model", "bs"], ["lat"])
        summary = deviation_summary(rows, ["lat"])
        assert summary["lat"]["median_abs_dev"] == pytest.approx(0.1)
        assert summary["lat"]["n"] == 1

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            compare_rows([], [], ["k"], ["v"])


class TestRuntimeComparison:
    @pytest.fixture(scope="class")
    def runs(self):
        from repro.core import ExperimentSpec, run_experiment

        return [run_experiment(ExperimentSpec.for_model(
                    "phi2", batch_size=1, n_runs=1, runtime=rt))
                for rt in ("gguf", "hf-transformers")]

    def test_baseline_first_with_unit_speedup(self, runs):
        from repro.reporting import runtime_comparison

        rows = runtime_comparison(runs)
        assert [r["runtime"] for r in rows] == ["hf-transformers", "gguf"]
        assert rows[0]["speedup_x"] == 1.0
        assert rows[1]["speedup_x"] > 1.0  # gguf wins single-sequence
        assert rows[1]["speedup_x"] == round(
            rows[1]["throughput_tok_s"] / rows[0]["throughput_tok_s"], 2)

    def test_speedup_blank_without_a_baseline(self, runs):
        from repro.reporting import runtime_comparison

        gguf_only = [r for r in runs if r.runtime == "gguf"]
        rows = runtime_comparison(gguf_only)
        assert rows[0]["speedup_x"] == ""

    def test_rows_format_as_a_table(self, runs):
        from repro.reporting import runtime_comparison

        text = format_table(runtime_comparison(runs))
        assert "hf-transformers" in text and "speedup_x" in text
