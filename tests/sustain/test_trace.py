"""CarbonTrace: determinism, periodicity, CSV round-trip, deferral."""

import json
import subprocess
import sys

import pytest

from repro.errors import ConfigError
from repro.sustain import CarbonTrace, defer_arrivals
from repro.sustain.trace import J_PER_KWH, carbon_from_samples


class TestConstruction:
    def test_constant_trace_is_flat(self):
        tr = CarbonTrace.constant(300.0, usd_per_kwh=0.1)
        assert tr.intensity_at(0.0) == 300.0
        assert tr.intensity_at(1e6) == 300.0
        assert tr.mean_intensity() == 300.0
        assert tr.min_intensity() == 300.0

    def test_validation_rejects_bad_shapes(self):
        with pytest.raises(ConfigError):
            CarbonTrace(name="x", step_s=0.0, gco2_per_kwh=(1.0,),
                        usd_per_kwh=(0.1,))
        with pytest.raises(ConfigError):
            CarbonTrace(name="x", step_s=10.0, gco2_per_kwh=(),
                        usd_per_kwh=())
        with pytest.raises(ConfigError):
            CarbonTrace(name="x", step_s=10.0, gco2_per_kwh=(1.0, 2.0),
                        usd_per_kwh=(0.1,))
        with pytest.raises(ConfigError):
            CarbonTrace(name="x", step_s=10.0, gco2_per_kwh=(-1.0,),
                        usd_per_kwh=(0.1,))

    def test_stepwise_left_and_periodic(self):
        tr = CarbonTrace(name="step", step_s=10.0,
                         gco2_per_kwh=(100.0, 200.0),
                         usd_per_kwh=(0.1, 0.2))
        assert tr.intensity_at(0.0) == 100.0
        assert tr.intensity_at(9.999) == 100.0
        assert tr.intensity_at(10.0) == 200.0
        # Wraps periodically past the last step.
        assert tr.intensity_at(20.0) == 100.0
        assert tr.price_at(35.0) == 0.2


class TestDeterminism:
    def test_diurnal_same_seed_same_trace(self):
        a = CarbonTrace.diurnal(seed=7)
        b = CarbonTrace.diurnal(seed=7)
        assert a == b
        assert a.gco2_per_kwh == b.gco2_per_kwh

    def test_diurnal_seed_and_name_both_matter(self):
        base = CarbonTrace.diurnal(seed=7)
        assert CarbonTrace.diurnal(seed=8) != base
        assert (CarbonTrace.diurnal(seed=7, name="other").gco2_per_kwh
                != base.gco2_per_kwh)

    def test_stable_across_hash_seeds(self):
        """PYTHONHASHSEED must not reorder the generated steps."""
        script = (
            "import json\n"
            "from repro.sustain import CarbonTrace\n"
            "tr = CarbonTrace.diurnal(seed=3)\n"
            "dk = CarbonTrace.duck_curve(seed=3)\n"
            "print(json.dumps([tr.gco2_per_kwh, tr.usd_per_kwh,\n"
            "                  dk.gco2_per_kwh, dk.usd_per_kwh]))\n"
        )
        outs = []
        for hash_seed in ("0", "4242"):
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, check=True,
                env={"PYTHONPATH": "src", "PYTHONHASHSEED": hash_seed},
            )
            outs.append(proc.stdout)
        assert outs[0] == outs[1]
        json.loads(outs[0])  # and it is well-formed


class TestCsvRoundTrip:
    def test_from_csv_reproduces_generated_trace(self, tmp_path):
        tr = CarbonTrace.duck_curve(seed=5, name="duck")
        path = tmp_path / "duck.csv"
        lines = ["time_s,gco2_per_kwh,usd_per_kwh"]
        for i, (g, u) in enumerate(zip(tr.gco2_per_kwh, tr.usd_per_kwh)):
            lines.append(f"{i * tr.step_s},{g},{u}")
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        back = CarbonTrace.from_csv(str(path), name="duck")
        assert back == tr


class TestCarbonMath:
    def test_carbon_from_samples_trapezoid_times_intensity(self):
        from repro.telemetry.sampler import PowerSample

        tr = CarbonTrace.constant(360.0, usd_per_kwh=0.36)
        # Two samples 10 s apart at a constant 100 W = 1000 J.
        samples = [PowerSample(0.0, 100.0, "decode"),
                   PowerSample(10.0, 100.0, "decode")]
        grams, usd = carbon_from_samples(samples, tr)
        assert grams == pytest.approx(1000.0 / J_PER_KWH * 360.0)
        assert usd == pytest.approx(1000.0 / J_PER_KWH * 0.36)

    def test_carbon_g_scales_linearly_with_energy(self):
        tr = CarbonTrace.constant(400.0)
        assert tr.carbon_g(J_PER_KWH, 0.0) == pytest.approx(400.0)
        assert tr.carbon_g(J_PER_KWH / 2, 0.0) == pytest.approx(200.0)


class TestDeferral:
    def test_defers_toward_cleaner_step_deterministically(self):
        from repro.cluster.workload import (as_cluster_requests,
                                            poisson_workload)

        tr = CarbonTrace(name="two-step", step_s=60.0,
                         gco2_per_kwh=(500.0, 100.0),
                         usd_per_kwh=(0.1, 0.1))

        def build():
            reqs = as_cluster_requests(
                poisson_workload(0.5, 12, input_tokens=16,
                                 output_tokens=16, seed=2))
            moved = defer_arrivals(reqs, tr, max_defer_s=120.0)
            return moved, [r.arrival_s for r in reqs]

        moved_a, arrivals_a = build()
        moved_b, arrivals_b = build()
        assert moved_a == moved_b and arrivals_a == arrivals_b
        assert moved_a > 0
        # Deferred arrivals land inside the clean step, never past the
        # deferral budget, and the list stays sorted for the DES.
        assert arrivals_a == sorted(arrivals_a)

    def test_no_op_when_budget_is_zero(self):
        from repro.cluster.workload import (as_cluster_requests,
                                            poisson_workload)

        tr = CarbonTrace(name="two-step", step_s=60.0,
                         gco2_per_kwh=(500.0, 100.0),
                         usd_per_kwh=(0.1, 0.1))
        reqs = as_cluster_requests(poisson_workload(0.5, 8, seed=2))
        before = [r.arrival_s for r in reqs]
        assert defer_arrivals(reqs, tr, max_defer_s=0.0) == 0
        assert [r.arrival_s for r in reqs] == before
