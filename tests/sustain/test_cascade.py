"""SLM cascades: deterministic gate, escalation accounting, conservation."""

import pytest

from repro.cluster import EdgeCluster, FleetSpec, NodeSpec
from repro.cluster.workload import as_cluster_requests, poisson_workload
from repro.errors import ConfigError
from repro.fairness.accounting import (build_ledger,
                                       conservation_violations)
from repro.obs import Observer, kinds
from repro.sustain import CascadeSpec, LLM_TIER, SLM_TIER, served_by_tier


class TestSpec:
    def test_validation(self):
        with pytest.raises(ConfigError):
            CascadeSpec(gate=-0.1)
        with pytest.raises(Exception):
            CascadeSpec(slm_model="gpt17")

    def test_gate_is_deterministic_per_request(self):
        cas = CascadeSpec()
        draws = [cas.should_escalate(i) for i in range(200)]
        assert draws == [cas.should_escalate(i) for i in range(200)]
        # The calibrated phi2-int8 vs llama-fp16 gap escalates some but
        # not all requests at the default gate.
        assert 0 < sum(draws) < 200

    def test_probability_tracks_quality_gap(self):
        worse = CascadeSpec(gate=1.0)
        better = CascadeSpec(gate=0.1)
        assert worse.escalation_probability() > \
            better.escalation_probability()
        assert worse.slm_quality() > worse.llm_quality()  # ppl: higher=worse

    def test_quality_proxy_is_token_weighted(self):
        cas = CascadeSpec()
        assert cas.quality_proxy(0, 100) == pytest.approx(cas.llm_quality())
        assert cas.quality_proxy(100, 0) == pytest.approx(cas.slm_quality())
        assert cas.quality_delta_pct(0, 100) == pytest.approx(0.0)
        assert cas.quality_delta_pct(100, 0) > 0.0


def _cascade_fleet():
    return FleetSpec.of(
        [NodeSpec("jetson-orin-agx-64gb", max_batch=4, tier=SLM_TIER),
         NodeSpec("jetson-orin-agx-64gb", max_batch=4, tier=LLM_TIER)],
        model="phi2", precision="int8", policy="round-robin")


def _workload(n=16):
    return poisson_workload(1.0, n, input_tokens=32, output_tokens=32,
                            seed=4)


class TestEscalationAccounting:
    def run_once(self, observer=None):
        cas = CascadeSpec()
        cluster = EdgeCluster.of(_cascade_fleet(), observer=observer)
        report = cluster.run_cascade(
            as_cluster_requests(_workload()),
            lambda r: cas.should_escalate(r.req_id))
        return cas, cluster, report

    def test_escalated_tokens_are_waste_plus_llm_service(self):
        """Conservation: every produced token is either served to a
        request that kept its answer, or booked as cascade waste; the
        LLM twin re-serves exactly the escalated demand."""
        _, cluster, report = self.run_once()
        reqs = report.requests
        escalated = [r for r in reqs if r.escalated]
        twins = [r for r in reqs if r.escalated_from >= 0]
        assert escalated, "gate never fired — test workload too small"
        assert len(twins) == len(escalated)
        by_id = {r.req_id: r for r in reqs}
        for t in twins:
            src = by_id[t.escalated_from]
            assert (t.input_tokens, t.output_tokens) == \
                   (src.input_tokens, src.output_tokens)
            assert t.tier == LLM_TIER and src.tier == SLM_TIER
            # The twin arrives when the SLM finished — re-prefill is paid.
            assert t.arrival_s == src.finish_s

        ledgers = build_ledger(reqs)
        node_tokens = sum(n.served_tokens for n in cluster.nodes)
        assert not conservation_violations(ledgers,
                                           node_served_tokens=node_tokens)
        slm_waste = sum(r.generated for r in escalated)
        produced = sum(t.produced_tokens for t in ledgers.values())
        served = sum(t.served_tokens for t in ledgers.values())
        wasted = sum(t.wasted_tokens for t in ledgers.values())
        assert produced == served + wasted
        assert wasted == slm_waste
        # Fleet meters agree: nodes served exactly what the ledger says
        # was produced (the SLM tokens were produced, then discarded).
        assert node_tokens == produced

    def test_served_by_tier_partitions_the_kept_tokens(self):
        _, _, report = self.run_once()
        tiers = served_by_tier(report.requests)
        kept = sum(r.generated for r in report.requests
                   if r.finish_s is not None and not r.escalated)
        assert tiers[SLM_TIER] + tiers[LLM_TIER] == kept

    def test_escalation_instants_and_report_counter(self):
        obs = Observer()
        _, _, report = self.run_once(observer=obs)
        instants = [i for i in obs.instants
                    if i.name == kinds.CASCADE_ESCALATE]
        assert len(instants) == report.escalations > 0

    def test_repeat_runs_bit_identical(self):
        _, _, a = self.run_once()
        _, _, b = self.run_once()
        assert a.as_row() == b.as_row()
        assert [(r.req_id, r.finish_s, r.escalated) for r in a.requests] == \
               [(r.req_id, r.finish_s, r.escalated) for r in b.requests]
