"""The planner's optional carbon objective stays a strict add-on."""

import pytest

from repro.errors import ConfigError
from repro.plan import PlanSpec, plan


class TestCarbonObjective:
    def test_default_plan_has_no_carbon_column(self):
        rep = plan(PlanSpec())
        assert all("g_per_token" not in r for r in rep.rows)

    def test_carbon_column_appears_and_ranks_after_nodes_and_watts(self):
        base = plan(PlanSpec())
        carbon = plan(PlanSpec(carbon_gco2_per_kwh=400.0))
        assert all("g_per_token" in r for r in carbon.rows)
        # The objective is ranked *after* nodes and watts: with a single
        # device the winner cannot change, only gain the extra column.
        stripped = [{k: v for k, v in r.items() if k != "g_per_token"}
                    for r in carbon.rows]
        assert stripped == base.rows
        chosen = dict(carbon.chosen)
        chosen.pop("g_per_token")
        assert chosen == base.chosen

    def test_carbon_changes_cache_key_and_validates(self):
        assert PlanSpec().cache_key() != \
            PlanSpec(carbon_gco2_per_kwh=400.0).cache_key()
        with pytest.raises(ConfigError):
            PlanSpec(carbon_gco2_per_kwh=-1.0)

    def test_g_per_token_is_j_per_token_times_intensity(self):
        from repro.sustain.trace import J_PER_KWH

        rep = plan(PlanSpec(carbon_gco2_per_kwh=360.0))
        for r in rep.rows:
            if r["j_per_token"] == "inf":
                assert r["g_per_token"] == "inf"
            else:
                expect = r["j_per_token"] / J_PER_KWH * 360.0
                assert r["g_per_token"] == pytest.approx(expect, abs=5e-6)
