"""Carbon-aware routing: fallback equality and clean-region preference."""

from repro.cluster import EdgeCluster, FleetSpec, NodeSpec, poisson_workload
from repro.sustain import CarbonTrace


def _run(policy, traces=None, regions=None):
    fleet = FleetSpec.of(
        [NodeSpec("jetson-orin-agx-64gb", max_batch=4),
         NodeSpec("jetson-orin-agx-32gb", max_batch=4)],
        model="llama", precision="fp16", policy=policy,
        regions=regions, traces=traces)
    cluster = EdgeCluster.of(fleet)
    report = cluster.run(poisson_workload(2.0, 24, input_tokens=16,
                                          output_tokens=16, seed=3))
    return cluster, report


class TestFallbackEquality:
    def test_equals_energy_aware_without_traces(self):
        """No regional trace anywhere -> the dimensionless intensity of
        1 cancels and carbon-aware is exactly energy-aware."""
        _, energy = _run("energy-aware")
        _, carbon = _run("carbon-aware")
        row_e, row_c = energy.as_row(), carbon.as_row()
        row_e.pop("policy"), row_c.pop("policy")
        # Carbon columns differ by construction (unbound = zeros).
        for row in (row_e, row_c):
            for col in ("carbon_g", "g_per_token", "energy_cost_usd"):
                row.pop(col, None)
        assert row_e == row_c
        assert [r.first_token_s for r in energy.requests] == \
               [r.first_token_s for r in carbon.requests]
        assert [r.node_id for r in energy.requests] == \
               [r.node_id for r in carbon.requests]

    def test_equals_energy_aware_when_all_regions_share_one_trace(self):
        """One shared trace multiplies every score by the same factor;
        argmin is unchanged, so placements are identical."""
        tr = CarbonTrace.diurnal(seed=11)
        kw = dict(traces={"global": tr}, regions=["global", "global"])
        _, energy = _run("energy-aware")
        _, carbon = _run("carbon-aware", **kw)
        assert [r.node_id for r in energy.requests] == \
               [r.node_id for r in carbon.requests]
        assert [r.first_token_s for r in energy.requests] == \
               [r.first_token_s for r in carbon.requests]
        # And with a trace bound, the carbon meters actually read > 0.
        assert carbon.carbon_g > 0
        assert carbon.g_per_token > 0


class TestRegionalPreference:
    def test_prefers_the_cleaner_region_under_intensity_skew(self):
        """Identical devices, 5x intensity skew: carbon-aware must place
        more work in the clean region than energy-aware does."""
        dirty = CarbonTrace.constant(500.0, name="dirty")
        clean = CarbonTrace.constant(100.0, name="clean")

        def served_in(policy, region):
            cluster, _ = _run(policy,
                              traces={"dirty": dirty, "clean": clean},
                              regions=["dirty", "clean"])
            return sum(n.served_tokens for n in cluster.nodes
                       if n.region == region)

        assert served_in("carbon-aware", "clean") > \
            served_in("energy-aware", "clean")

    def test_report_carbon_accounting_splits_by_region(self):
        from repro.sustain.trace import carbon_from_samples

        dirty = CarbonTrace.constant(500.0, name="dirty")
        clean = CarbonTrace.constant(100.0, name="clean")
        cluster, report = _run("carbon-aware",
                               traces={"dirty": dirty, "clean": clean},
                               regions=["dirty", "clean"])
        # Fleet grams equal the sum of per-node metered grams.
        per_node = sum(
            carbon_from_samples(n.sampler.samples, n.carbon_trace)[0]
            for n in cluster.nodes)
        assert report.carbon_g > 0
        assert abs(report.carbon_g - per_node) < 1e-9
