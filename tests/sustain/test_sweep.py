"""The sustain sweep: determinism, headline orderings, canonical CSV."""

import pytest

from repro.errors import ConfigError
from repro.sustain import SustainSpec, run_sustain, sustain_rows_csv
from repro.sustain.trace import SUSTAIN_VERSION


def quick(**over):
    """A small spec that still exercises every moving part."""
    base = dict(n_requests=12, rate_per_s=0.5)
    base.update(over)
    return SustainSpec(**base)


class TestSpec:
    def test_validation(self):
        with pytest.raises(ConfigError):
            SustainSpec(devices=())
        with pytest.raises(ConfigError):
            SustainSpec(scenarios=("mars",))
        with pytest.raises(ConfigError):
            SustainSpec(routers=("fifo",))
        with pytest.raises(ConfigError):
            SustainSpec(cascades=("maybe",))
        with pytest.raises(ConfigError):
            SustainSpec(n_requests=0)

    def test_cache_key_folds_sustain_version(self, monkeypatch):
        import repro.sustain.sweep as sweep_mod

        spec = quick()
        a = spec.cache_key()
        assert a == quick().cache_key()
        assert a != quick(seed=1).cache_key()
        monkeypatch.setattr(sweep_mod, "SUSTAIN_VERSION",
                            SUSTAIN_VERSION + 1)
        assert quick().cache_key() != a


class TestDeterminism:
    def test_repeat_runs_are_bit_identical(self):
        spec = quick(scenarios=("two-region",), cascades=("off",))
        a = run_sustain(spec)
        b = run_sustain(spec)
        assert a.rows == b.rows
        assert sustain_rows_csv(a) == sustain_rows_csv(b)

    def test_csv_is_canonical(self):
        rep = run_sustain(quick(scenarios=("uniform",), cascades=("off",),
                                routers=("energy-aware",)))
        csv_text = sustain_rows_csv(rep)
        assert csv_text.endswith("\n")
        header = csv_text.splitlines()[0].split(",")
        assert header[:4] == ["scenario", "router", "cascade", "power_mode"]
        assert "carbon_g" in header and "quality_delta_pct" in header


class TestHeadlines:
    @pytest.fixture(scope="class")
    def report(self):
        return run_sustain(SustainSpec())

    def row(self, report, **match):
        rows = [r for r in report.rows
                if all(r[k] == v for k, v in match.items())]
        assert len(rows) == 1, (match, rows)
        return rows[0]

    def test_uniform_trace_carbon_equals_energy_routing(self, report):
        """Satellite acceptance: one shared trace -> identical runs."""
        ea = self.row(report, scenario="uniform", router="energy-aware",
                      cascade="off")
        ca = self.row(report, scenario="uniform", router="carbon-aware",
                      cascade="off")
        assert {k: v for k, v in ea.items() if k != "router"} == \
               {k: v for k, v in ca.items() if k != "router"}

    def test_two_region_carbon_beats_energy_on_grams(self, report):
        """Tentpole acceptance: on the two-region skewed-intensity
        scenario, carbon-aware cuts fleet gCO₂ at equal completions."""
        ea = self.row(report, scenario="two-region", router="energy-aware",
                      cascade="off")
        ca = self.row(report, scenario="two-region", router="carbon-aware",
                      cascade="off")
        assert ca["completed"] == ea["completed"]
        assert ca["carbon_g"] < ea["carbon_g"]

    def test_cascade_point_cuts_j_per_token_at_bounded_quality(self, report):
        """Tentpole acceptance: some cascade point beats LLM-only on
        J/token with a bounded quality-proxy delta."""
        wins = [
            r for r in report.rows if r["cascade"] == "on"
            and r["j_per_token"] < self.row(
                report, scenario=r["scenario"], router=r["router"],
                cascade="off")["j_per_token"]
            and r["quality_delta_pct"] <= 50.0
        ]
        assert wins, "no cascade point beat LLM-only J/token"
        assert all(r["escalations"] > 0 for r in wins)

    def test_conservation_columns_are_consistent(self, report):
        for r in report.rows:
            assert r["completed"] <= r["requests"]
            assert r["carbon_g"] >= 0 and r["g_per_token"] >= 0
            if r["cascade"] == "off":
                assert r["escalations"] == 0


class TestDeferralKnob:
    def test_deferral_defers_and_stays_deterministic(self):
        spec = quick(scenarios=("two-region",), cascades=("off",),
                     routers=("carbon-aware",), defer_max_s=120.0)
        a = run_sustain(spec)
        b = run_sustain(spec)
        assert a.rows == b.rows
        assert a.rows[0]["deferred"] > 0

    def test_zero_budget_never_defers(self):
        rep = run_sustain(quick(scenarios=("two-region",), cascades=("off",),
                                routers=("carbon-aware",)))
        assert all(r["deferred"] == 0 for r in rep.rows)
