"""FleetSpec: validation, and exact parity of the legacy build shim."""

import warnings

import pytest

from repro.cluster import EdgeCluster, FleetSpec, NodeSpec, poisson_workload
from repro.errors import ConfigError
from repro.obs import Observer, chrome_trace_json
from repro.sustain import CarbonTrace


class TestValidation:
    def test_needs_nodes(self):
        with pytest.raises(ConfigError):
            FleetSpec(nodes=())

    def test_nodes_must_be_nodespecs(self):
        with pytest.raises(ConfigError):
            FleetSpec(nodes=("jetson-orin-agx-64gb",))

    def test_unknown_model_precision_policy(self):
        from repro.errors import ReproError

        node = (NodeSpec("jetson-orin-agx-64gb"),)
        with pytest.raises(ReproError):
            FleetSpec(nodes=node, model="gpt17")
        with pytest.raises(ReproError):
            FleetSpec(nodes=node, precision="fp12")
        with pytest.raises(ConfigError):
            FleetSpec(nodes=node, policy="fifo")

    def test_duplicate_region_binding_rejected(self):
        tr = CarbonTrace.constant(100.0)
        with pytest.raises(ConfigError):
            FleetSpec(nodes=(NodeSpec("jetson-orin-agx-64gb"),),
                      traces=(("eu", tr), ("eu", tr)))

    def test_of_mixes_presets_and_specs_and_stamps_regions(self):
        fleet = FleetSpec.of(
            ["jetson-orin-agx-64gb",
             NodeSpec("jetson-xavier-agx-32gb", max_batch=2)],
            regions=["eu", None],
            traces={"eu": CarbonTrace.constant(90.0)})
        assert fleet.nodes[0].region == "eu"
        assert fleet.nodes[1].region is None
        assert fleet.nodes[1].max_batch == 2
        assert fleet.trace_for("eu").mean_intensity() == 90.0
        assert fleet.trace_for(None) is None
        assert fleet.trace_for("us") is None

    def test_regions_must_parallel_devices(self):
        with pytest.raises(ConfigError):
            FleetSpec.of(["jetson-orin-agx-64gb"], regions=["eu", "us"])

    def test_spec_is_hashable_and_cacheable(self):
        import dataclasses

        from repro.core.cache import payload_fingerprint

        fleet = FleetSpec.of(["jetson-orin-agx-64gb"],
                             traces={"eu": CarbonTrace.diurnal(seed=1)},
                             regions=["eu"])
        hash(fleet)  # frozen dataclass of tuples
        a = payload_fingerprint(dataclasses.asdict(fleet))
        b = payload_fingerprint(dataclasses.asdict(fleet))
        assert a == b


FLEET = [
    NodeSpec("jetson-orin-agx-64gb", max_batch=4),
    NodeSpec("jetson-xavier-agx-32gb", max_batch=4),
]


def _workload():
    return poisson_workload(2.0, 20, input_tokens=16, output_tokens=16,
                            seed=5)


class TestBuildShimParity:
    def test_build_warns_deprecation(self):
        with pytest.warns(DeprecationWarning, match="FleetSpec"):
            EdgeCluster.build(list(FLEET), model="llama", policy="jsq")

    def test_build_and_of_are_byte_identical(self):
        """The shim must construct the *same* cluster: every per-request
        timestamp, the report row, and the telemetry stream all match
        exactly (no approx; determinism is the whole contract)."""
        obs_new = Observer()
        fleet = FleetSpec.of(list(FLEET), model="llama", precision="fp16",
                             policy="jsq")
        new = EdgeCluster.of(fleet, observer=obs_new).run(_workload())

        obs_old = Observer()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy_cluster = EdgeCluster.build(
                list(FLEET), model="llama", precision="fp16", policy="jsq",
                observer=obs_old)
        legacy = legacy_cluster.run(_workload())

        assert new.as_row() == legacy.as_row()
        assert [r.first_token_s for r in new.requests] == \
               [r.first_token_s for r in legacy.requests]
        assert [r.finish_s for r in new.requests] == \
               [r.finish_s for r in legacy.requests]
        assert chrome_trace_json(obs_new) == chrome_trace_json(obs_old)

    def test_build_rejects_empty_specs(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(ConfigError):
                EdgeCluster.build([], model="llama")
