"""Power-mode auto-tuner."""

import pytest

from repro.errors import ExperimentError
from repro.models import get_model
from repro.power.modes import get_power_mode
from repro.power.tuner import (
    TunedPoint,
    best_energy_within_slowdown,
    best_under_power_cap,
    evaluate_mode,
    pareto_frontier,
    sweep_operating_points,
)
from repro.quant.dtypes import Precision


@pytest.fixture(scope="module")
def points():
    from repro.hardware import get_device

    return sweep_operating_points(
        get_device("jetson-orin-agx-64gb"), get_model("llama"), Precision.FP16,
        gpu_freqs_mhz=(1301, 800, 400),
        cpu_freqs_ghz=(2.2, 1.2),
        mem_freqs_mhz=(3199, 2133, 665),
    )


class TestEvaluate:
    def test_maxn_is_fastest_grid_point(self, points, orin):
        maxn = evaluate_mode(orin, get_model("llama"), Precision.FP16,
                             get_power_mode("MAXN"))
        assert maxn.latency_s <= min(p.latency_s for p in points) * 1.001

    def test_mode_h_matches_sweep_grid_point(self, points, orin):
        h = evaluate_mode(orin, get_model("llama"), Precision.FP16,
                          get_power_mode("H"))
        grid_h = next(p for p in points if p.mode.name == "g1301-c2.2-m665")
        assert h.latency_s == pytest.approx(grid_h.latency_s, rel=1e-6)

    def test_device_restored_after_sweep(self, orin):
        sweep_operating_points(orin, get_model("phi2"), Precision.FP16,
                               gpu_freqs_mhz=(400,), cpu_freqs_ghz=(1.2,),
                               mem_freqs_mhz=(665,))
        assert orin.gpu.freq_hz == orin.gpu.max_freq_hz


class TestPareto:
    def test_frontier_is_nondominated_and_sorted(self, points):
        frontier = pareto_frontier(points)
        assert 1 <= len(frontier) <= len(points)
        lats = [p.latency_s for p in frontier]
        assert lats == sorted(lats)
        for a in frontier:
            assert not any(b.dominates(a) for b in points)

    def test_frontier_contains_both_extremes(self, points):
        frontier = pareto_frontier(points)
        fastest = min(points, key=lambda p: p.latency_s)
        coolest = min(points, key=lambda p: p.power_w)
        assert any(p.mode.name == fastest.mode.name for p in frontier)
        assert any(p.mode.name == coolest.mode.name for p in frontier)

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            pareto_frontier([])


class TestConstraints:
    def test_power_cap_respected(self, points):
        cap = 30.0
        best = best_under_power_cap(points, cap)
        assert best is not None
        assert best.power_w <= cap
        # It is the fastest among compliant points.
        for p in points:
            if p.power_w <= cap:
                assert best.latency_s <= p.latency_s

    def test_impossible_cap_returns_none(self, points):
        assert best_under_power_cap(points, 1.0) is None

    def test_energy_within_slowdown(self, points):
        fastest = min(points, key=lambda p: p.latency_s)
        best = best_energy_within_slowdown(points, 1.5)
        assert best is not None
        assert best.latency_s <= 1.5 * fastest.latency_s
        assert best.energy_j <= fastest.energy_j

    def test_slowdown_validation(self, points):
        with pytest.raises(ExperimentError):
            best_energy_within_slowdown(points, 0.5)

    def test_dominates_semantics(self):
        a = TunedPoint(None, 1.0, 10.0, 10.0)
        b = TunedPoint(None, 2.0, 10.0, 20.0)
        c = TunedPoint(None, 0.5, 20.0, 10.0)
        assert a.dominates(b)
        assert not b.dominates(a)
        assert not a.dominates(c) and not c.dominates(a)
