"""Property-based invariants of the power stack."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.jetson import orin_agx_64gb
from repro.power import ComponentUtilization, DvfsCurve, PowerModel

util_floats = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


@st.composite
def utilizations(draw):
    compute = draw(util_floats)
    busy = draw(st.floats(min_value=compute, max_value=1.0, allow_nan=False))
    return ComponentUtilization(
        gpu_compute=compute,
        gpu_busy=busy,
        mem_bw=draw(util_floats),
        cpu_cores_active=draw(st.floats(min_value=0.0, max_value=12.0,
                                        allow_nan=False)),
    )


@given(util=utilizations())
@settings(max_examples=100, deadline=None)
def test_power_bounded_and_above_idle(util):
    device = orin_agx_64gb()
    model = PowerModel()
    p = model.power_w(device, util)
    idle = model.power_w(device, ComponentUtilization.idle())
    assert idle <= p <= device.max_power_w * 1.4
    parts = model.breakdown(device, util)
    assert all(v >= 0 for v in parts.values())


@given(util=utilizations(), u2=utilizations())
@settings(max_examples=80, deadline=None)
def test_power_monotone_in_utilization(util, u2):
    """Pointwise-greater utilization never draws less power."""
    device = orin_agx_64gb()
    model = PowerModel()
    hi = ComponentUtilization(
        gpu_compute=max(util.gpu_compute, u2.gpu_compute),
        gpu_busy=max(util.gpu_busy, u2.gpu_busy),
        mem_bw=max(util.mem_bw, u2.mem_bw),
        cpu_cores_active=max(util.cpu_cores_active, u2.cpu_cores_active),
    )
    # The stall share is busy - compute; taking pointwise maxima can only
    # grow each term when compute weight exceeds stall weight, which the
    # defaults guarantee.
    assert model.power_w(device, hi) >= model.power_w(device, util) - 1e-9


@given(
    f1=st.floats(min_value=115e6, max_value=1301e6),
    f2=st.floats(min_value=115e6, max_value=1301e6),
)
@settings(max_examples=80, deadline=None)
def test_dvfs_power_superlinear_in_frequency(f1, f2):
    """Between any two clocks, the dynamic-power ratio is at least the
    frequency ratio (V falls with f, so power falls faster)."""
    curve = DvfsCurve(f_min_hz=114.75e6, f_max_hz=1301e6)
    lo, hi = sorted((f1, f2))
    if hi - lo < 1e6:
        return
    ratio = curve.dynamic_power_ratio(lo) / curve.dynamic_power_ratio(hi)
    assert ratio <= lo / hi * 1.0001 + 1e-9 or ratio <= 1.0
    assert curve.dynamic_power_ratio(lo) <= curve.dynamic_power_ratio(hi) + 1e-12


@given(freq=st.floats(min_value=204e6, max_value=3199e6))
@settings(max_examples=60, deadline=None)
def test_memory_bandwidth_monotone_in_clock(freq):
    device = orin_agx_64gb()
    device.memory.set_freq(freq)
    low = device.memory.streaming_bandwidth()
    device.memory.set_freq(device.memory.max_freq_hz)
    assert low <= device.memory.streaming_bandwidth() + 1e-6
