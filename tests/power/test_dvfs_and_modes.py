"""DVFS curves and power-mode definitions."""

import pytest

from repro.errors import PowerModeError
from repro.hardware import get_device
from repro.power import (
    DvfsCurve,
    PAPER_POWER_MODES,
    apply_power_mode,
    get_power_mode,
    parse_nvpmodel_conf,
    render_nvpmodel_conf,
)


class TestDvfs:
    def test_voltage_clamps_at_range_ends(self):
        c = DvfsCurve(f_min_hz=100e6, f_max_hz=1000e6, v_min=0.6, v_max=1.0)
        assert c.voltage(50e6) == 0.6
        assert c.voltage(2000e6) == 1.0
        assert c.voltage(550e6) == pytest.approx(0.8)

    def test_dynamic_power_ratio_is_1_at_max(self):
        c = DvfsCurve(f_min_hz=100e6, f_max_hz=1000e6)
        assert c.dynamic_power_ratio(1000e6) == pytest.approx(1.0)

    def test_half_clock_saves_more_than_half_power(self):
        c = DvfsCurve(f_min_hz=100e6, f_max_hz=1000e6)
        assert c.dynamic_power_ratio(500e6) < 0.5

    def test_monotone_in_frequency(self):
        c = DvfsCurve(f_min_hz=100e6, f_max_hz=1000e6)
        freqs = [100e6, 300e6, 500e6, 700e6, 900e6, 1000e6]
        ratios = [c.dynamic_power_ratio(f) for f in freqs]
        assert ratios == sorted(ratios)


class TestModes:
    def test_paper_table2_complete(self):
        assert list(PAPER_POWER_MODES) == ["MAXN", "A", "B", "C", "D",
                                           "E", "F", "G", "H"]

    def test_table2_rows_match_paper(self):
        rows = {m.name: m.as_row() for m in PAPER_POWER_MODES.values()}
        assert rows["MAXN"]["gpu_freq_mhz"] == 1301
        assert rows["A"]["gpu_freq_mhz"] == 800
        assert rows["B"]["gpu_freq_mhz"] == 400
        assert rows["C"]["cpu_freq_ghz"] == 1.7
        assert rows["D"]["cpu_freq_ghz"] == 1.2
        assert rows["E"]["cpu_cores_online"] == 8
        assert rows["F"]["cpu_cores_online"] == 4
        assert rows["G"]["mem_freq_mhz"] == 2133
        assert rows["H"]["mem_freq_mhz"] == 665

    def test_each_custom_mode_varies_one_dimension(self):
        maxn = PAPER_POWER_MODES["MAXN"]
        for name, mode in PAPER_POWER_MODES.items():
            if name == "MAXN":
                continue
            diffs = sum([
                mode.gpu_freq_hz != maxn.gpu_freq_hz,
                mode.cpu_freq_hz != maxn.cpu_freq_hz,
                mode.cpu_online_cores != maxn.cpu_online_cores,
                mode.mem_freq_hz != maxn.mem_freq_hz,
            ])
            assert diffs == 1, f"mode {name} varies {diffs} dimensions"

    def test_lookup_is_case_insensitive(self):
        assert get_power_mode("maxn").name == "MAXN"
        assert get_power_mode(" h ").name == "H"
        with pytest.raises(PowerModeError):
            get_power_mode("Z")

    def test_apply_mode_mutates_device(self):
        dev = get_device("jetson-orin-agx-64gb")
        apply_power_mode(dev, get_power_mode("H"))
        assert dev.memory.freq_hz == pytest.approx(665e6)
        assert dev.gpu.freq_hz == pytest.approx(1301e6)

    def test_apply_infeasible_mode_rejected(self):
        dev = get_device("jetson-orin-agx-32gb")  # only 8 CPU cores
        with pytest.raises(PowerModeError, match="cannot apply"):
            apply_power_mode(dev, get_power_mode("MAXN"))  # wants 12 cores

    def test_nvpmodel_roundtrip(self):
        modes = list(PAPER_POWER_MODES.values())
        text = render_nvpmodel_conf(modes)
        parsed = parse_nvpmodel_conf(text)
        assert [m.name for m in parsed] == [m.name for m in modes]
        for a, b in zip(parsed, modes):
            assert a.cpu_online_cores == b.cpu_online_cores
            assert a.gpu_freq_hz == pytest.approx(b.gpu_freq_hz)
            assert a.mem_freq_hz == pytest.approx(b.mem_freq_hz)
            assert a.cpu_freq_hz == pytest.approx(b.cpu_freq_hz, rel=1e-3)

    def test_parse_rejects_malformed(self):
        with pytest.raises(PowerModeError):
            parse_nvpmodel_conf("CPU_ONLINE CORES 4\n")  # no header
        with pytest.raises(PowerModeError):
            parse_nvpmodel_conf("< POWER_MODEL ID=0 NAME=X >\nBADLINE\n")
        with pytest.raises(PowerModeError):
            parse_nvpmodel_conf("< POWER_MODEL ID=0 NAME=X >\nCPU_FREQ MAX abc\n")
