"""Board power model."""

import pytest

from repro.errors import ConfigError
from repro.power import ComponentUtilization, PowerModel
from repro.power.modes import apply_power_mode, get_power_mode


@pytest.fixture
def model():
    return PowerModel()


def busy_util(compute=0.4, busy=0.9, mem=0.6, cores=2.0):
    return ComponentUtilization(
        gpu_compute=compute, gpu_busy=busy, mem_bw=mem, cpu_cores_active=cores
    )


class TestPowerModel:
    def test_idle_power_is_floor(self, model, orin):
        p = model.power_w(orin, ComponentUtilization.idle())
        assert p >= orin.idle_power_w
        assert p < 15.0  # idle + cpu static only

    def test_busy_exceeds_idle(self, model, orin):
        idle = model.power_w(orin, ComponentUtilization.idle())
        busy = model.power_w(orin, busy_util())
        assert busy > idle + 10

    def test_breakdown_sums_to_total(self, model, orin):
        util = busy_util()
        parts = model.breakdown(orin, util)
        assert sum(parts.values()) == pytest.approx(model.power_w(orin, util))
        assert set(parts) == {"idle", "cpu_static", "gpu", "cpu", "mem"}

    def test_compute_bound_hotter_than_stalled(self, model, orin):
        compute = model.power_w(orin, busy_util(compute=0.9, busy=0.95))
        stalled = model.power_w(orin, busy_util(compute=0.05, busy=0.95))
        assert compute > stalled + 15

    def test_gpu_downclock_reduces_power_superlinearly(self, model, orin):
        util = busy_util(compute=0.8)
        full = model.breakdown(orin, util)["gpu"]
        orin.gpu.set_freq(650.5e6)
        half = model.breakdown(orin, util)["gpu"]
        assert half < 0.5 * full

    def test_mem_downclock_reduces_mem_power(self, model, orin):
        util = busy_util()
        full = model.breakdown(orin, util)["mem"]
        apply_power_mode(orin, get_power_mode("H"))
        low = model.breakdown(orin, util)["mem"]
        assert low < 0.2 * full

    def test_offline_cores_reduce_static_power(self, model, orin):
        util = busy_util(cores=1.0)
        full = model.breakdown(orin, util)["cpu_static"]
        orin.cpu.set_online_cores(4)
        less = model.breakdown(orin, util)["cpu_static"]
        assert less == pytest.approx(full / 3)

    def test_cores_active_clamped_to_online(self, model, orin):
        orin.cpu.set_online_cores(2)
        p = model.breakdown(orin, busy_util(cores=12.0))["cpu"]
        p2 = model.breakdown(orin, busy_util(cores=2.0))["cpu"]
        assert p == pytest.approx(p2)

    def test_total_within_board_envelope(self, model, orin):
        p = model.power_w(orin, ComponentUtilization(
            gpu_compute=1.0, gpu_busy=1.0, mem_bw=1.0, cpu_cores_active=12.0
        ))
        assert p <= orin.max_power_w * 1.4  # plausibility envelope

    def test_utilization_validation(self):
        with pytest.raises(ConfigError):
            ComponentUtilization(gpu_compute=0.9, gpu_busy=0.5)
        with pytest.raises(ConfigError):
            ComponentUtilization(cpu_cores_active=-1.0)
