"""Synthetic corpora, prompt pools and batch sampling."""

import numpy as np
import pytest

from repro.datasets import (
    MarkovTextGenerator,
    PromptPool,
    ZipfVocabulary,
    build_workload,
    longbench_like_corpus,
    wikitext2_like_corpus,
)
from repro.errors import WorkloadError
from repro.tokenizer import train_bpe


class TestTextGen:
    def test_zipf_vocabulary_is_deterministic_and_unique(self):
        v1 = ZipfVocabulary(size=200, seed=9)
        v2 = ZipfVocabulary(size=200, seed=9)
        assert v1.words == v2.words
        assert len(set(v1.words)) == 200
        assert v1.probs[0] > v1.probs[-1]
        assert v1.probs.sum() == pytest.approx(1.0)

    def test_markov_sentences_have_requested_length(self):
        gen = MarkovTextGenerator(ZipfVocabulary(size=100, seed=1), seed=2)
        s = gen.sentence(5, 5)
        assert len(s.split()) == 5
        assert s.endswith(".")
        assert s[0].isupper()

    def test_validation(self):
        with pytest.raises(WorkloadError):
            ZipfVocabulary(size=5)
        gen = MarkovTextGenerator(ZipfVocabulary(size=50, seed=0), seed=0)
        with pytest.raises(WorkloadError):
            gen.paragraph(0)


class TestCorpora:
    def test_wikitext_structure(self):
        corpus = wikitext2_like_corpus(n_articles=3, seed=7)
        assert corpus.count("= =") >= 4  # section headings
        assert "\n\n" in corpus

    def test_longbench_documents_are_long(self):
        wiki = wikitext2_like_corpus(n_articles=5, seed=7)
        lb = longbench_like_corpus(n_documents=5, seed=7)
        wiki_paras = [p for p in wiki.split("\n\n") if len(p.split()) > 5]
        lb_docs = [p for p in lb.split("\n\n") if len(p.split()) > 5]
        assert max(len(d.split()) for d in lb_docs) > \
            2 * max(len(p.split()) for p in wiki_paras)

    def test_seeding_is_reproducible(self):
        assert wikitext2_like_corpus(seed=3, n_articles=2) == \
            wikitext2_like_corpus(seed=3, n_articles=2)
        assert wikitext2_like_corpus(seed=3, n_articles=2) != \
            wikitext2_like_corpus(seed=4, n_articles=2)


class TestPromptPool:
    @pytest.fixture(scope="class")
    def workload(self):
        return build_workload("wikitext2")

    def test_pool_respects_min_tokens(self, workload):
        for p in workload.pool.prompts:
            assert p.n_tokens >= 256

    def test_sample_batch_exact_lengths(self, workload):
        batch = workload.sample_batch(8, 32, seed=1)
        assert len(batch) == 8
        assert all(len(ids) == 32 for ids in batch)

    def test_sample_concatenates_for_long_inputs(self, workload):
        batch = workload.sample_batch(2, 600, seed=1)
        assert all(len(ids) == 600 for ids in batch)

    def test_sampling_seeded(self, workload):
        assert workload.sample_batch(4, 16, seed=5) == \
            workload.sample_batch(4, 16, seed=5)
        assert workload.sample_batch(4, 16, seed=5) != \
            workload.sample_batch(4, 16, seed=6)

    def test_empty_pool_rejected(self):
        tok = train_bpe("tiny corpus of words " * 5, vocab_size=300)
        with pytest.raises(WorkloadError, match="empty"):
            PromptPool.from_corpus("short text", tok, min_tokens=256)

    def test_unknown_workload_rejected(self):
        with pytest.raises(WorkloadError):
            build_workload("c4")

    def test_longbench_builds(self):
        wl = build_workload("longbench")
        assert wl.name == "longbench"
        assert len(wl.pool) >= 10
