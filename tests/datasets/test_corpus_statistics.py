"""Statistical properties of the synthetic corpora.

The workloads stand in for WikiText2/LongBench, so their *statistics*
are part of the substitution contract: Zipfian unigrams, reproducible
sampling, and LongBench-like length profiles.
"""

import numpy as np
import pytest

from repro.datasets import MarkovTextGenerator, ZipfVocabulary
from repro.datasets.wikitext import wikitext2_like_corpus


class TestZipfLaw:
    def test_sampled_frequencies_follow_power_law(self):
        """Rank-frequency slope of generated text is near the configured
        exponent (within sampling tolerance)."""
        vocab = ZipfVocabulary(size=500, exponent=1.07, seed=3)
        gen = MarkovTextGenerator(vocab, chain_weight=0.0, seed=4)  # pure unigram
        words = " ".join(gen.sentence(20, 20) for _ in range(400)).lower()
        tokens = [w.strip(".").lower() for w in words.split()]
        counts = {}
        for t in tokens:
            counts[t] = counts.get(t, 0) + 1
        freqs = np.array(sorted(counts.values(), reverse=True), dtype=float)
        top = freqs[:50]
        ranks = np.arange(1, top.size + 1)
        slope, _ = np.polyfit(np.log(ranks), np.log(top), 1)
        assert -1.6 < slope < -0.6  # near the Zipf exponent of -1.07

    def test_probabilities_normalised_and_monotone(self):
        vocab = ZipfVocabulary(size=300, seed=0)
        assert vocab.probs.sum() == pytest.approx(1.0)
        assert (np.diff(vocab.probs) <= 1e-12).all()


class TestCorpusShape:
    def test_wikitext_paragraph_lengths_span_the_pool_threshold(self):
        """The corpus must produce both short paragraphs (excluded from
        the pool) and >=256-token ones (included), like WikiText2."""
        corpus = wikitext2_like_corpus(n_articles=20, seed=11)
        paras = [p for p in corpus.split("\n\n") if p and not p.startswith("=")]
        word_counts = [len(p.split()) for p in paras]
        assert min(word_counts) < 120
        assert max(word_counts) > 200

    def test_markov_chain_raises_bigram_consistency(self):
        """With a strong chain weight the same bigrams recur far more
        often than under unigram sampling."""

        def distinct_bigram_fraction(chain_weight, seed=9):
            vocab = ZipfVocabulary(size=400, seed=seed)
            gen = MarkovTextGenerator(vocab, chain_weight=chain_weight,
                                      seed=seed + 1)
            words = " ".join(gen.sentence(18, 18) for _ in range(150)).split()
            bigrams = list(zip(words[:-1], words[1:]))
            return len(set(bigrams)) / len(bigrams)

        assert distinct_bigram_fraction(0.9) < distinct_bigram_fraction(0.0)
