"""Power sampler, energy integration, metric definitions."""

import pytest

from repro.engine.state import EngineState
from repro.errors import ConfigError
from repro.power import ComponentUtilization, PowerModel
from repro.sim import Environment
from repro.telemetry import (
    PowerSample,
    PowerSampler,
    latency_seconds,
    median_power_w,
    throughput_tokens_per_s,
    trapezoid_energy_j,
)


def make_sampler(orin, period=2.0):
    env = Environment()
    state = EngineState()
    sampler = PowerSampler(env, orin, PowerModel(), state, period_s=period)
    return env, state, sampler


class TestSampler:
    def test_samples_every_period(self, orin):
        env, state, sampler = make_sampler(orin)
        sampler.start()

        def workload():
            state.set("decode", ComponentUtilization(
                gpu_compute=0.5, gpu_busy=0.9, mem_bw=0.7, cpu_cores_active=2))
            yield env.timeout(10.5)
            sampler.stop()
            state.set_idle()

        env.process(workload())
        env.run(until=12.0)
        times = [s.time_s for s in sampler.samples]
        assert times == [0.0, 2.0, 4.0, 6.0, 8.0, 10.0]

    def test_samples_reflect_live_state(self, orin):
        env, state, sampler = make_sampler(orin)
        sampler.start()

        def workload():
            yield env.timeout(3.0)  # idle for 3s
            state.set("decode", ComponentUtilization(
                gpu_compute=0.8, gpu_busy=0.95, mem_bw=0.8, cpu_cores_active=3))
            yield env.timeout(5.0)
            sampler.stop()

        env.process(workload())
        env.run()
        idle = [s.power_w for s in sampler.samples if s.phase == "idle"]
        busy = [s.power_w for s in sampler.samples if s.phase == "decode"]
        assert busy and idle
        assert min(busy) > max(idle) + 10

    def test_invalid_period(self, orin):
        env = Environment()
        with pytest.raises(ConfigError):
            PowerSampler(env, orin, PowerModel(), EngineState(), period_s=0)

    def test_start_is_idempotent(self, orin):
        env, _, sampler = make_sampler(orin)
        sampler.start()
        sampler.start()
        env.run(until=4.0)
        assert [s.time_s for s in sampler.samples].count(0.0) == 1


class TestEnergy:
    def test_constant_power_integrates_exactly(self):
        samples = [PowerSample(t, 30.0, "decode") for t in (0.0, 2.0, 4.0)]
        assert trapezoid_energy_j(samples) == pytest.approx(120.0)

    def test_ramp_integrates_as_trapezoid(self):
        samples = [PowerSample(0.0, 0.0, "x"), PowerSample(4.0, 40.0, "x")]
        assert trapezoid_energy_j(samples) == pytest.approx(80.0)

    def test_single_sample_zero_energy(self):
        assert trapezoid_energy_j([PowerSample(0.0, 30.0, "x")]) == 0.0

    def test_empty_or_unordered_rejected(self):
        with pytest.raises(ConfigError):
            trapezoid_energy_j([])
        with pytest.raises(ConfigError):
            trapezoid_energy_j([PowerSample(2.0, 1.0, "x"),
                                PowerSample(0.0, 1.0, "x")])

    def test_median_excludes_idle_when_asked(self):
        samples = [PowerSample(0, 10.0, "idle"), PowerSample(2, 40.0, "decode"),
                   PowerSample(4, 42.0, "decode")]
        assert median_power_w(samples) == pytest.approx(41.0)
        assert median_power_w(samples, active_only=False) == pytest.approx(40.0)

    def test_median_falls_back_to_all_idle(self):
        samples = [PowerSample(0, 10.0, "idle"), PowerSample(2, 12.0, "idle")]
        assert median_power_w(samples) == pytest.approx(11.0)


class TestMetrics:
    def test_throughput_counts_input_and_output(self):
        tp = throughput_tokens_per_s([32, 32], [64, 64], batch_latency_s=2.0)
        assert tp == pytest.approx(96.0)

    def test_throughput_validation(self):
        with pytest.raises(ConfigError):
            throughput_tokens_per_s([1], [1], 0.0)
        with pytest.raises(ConfigError):
            throughput_tokens_per_s([1, 2], [1], 1.0)

    def test_latency_sum(self):
        assert latency_seconds([0.1, 0.2], prefill_s=0.05) == pytest.approx(0.35)
        with pytest.raises(ConfigError):
            latency_seconds([-0.1])
