"""Derived efficiency statistics."""

import pytest

from repro.engine import GenerationSpec, ServingEngine
from repro.errors import ConfigError
from repro.hardware import get_device
from repro.models import get_model
from repro.quant.dtypes import Precision
from repro.telemetry.stats import (
    efficiency_row,
    energy_delay_product,
    energy_per_token_j,
    step_latency_percentiles,
)


@pytest.fixture(scope="module")
def result():
    eng = ServingEngine(get_device("jetson-orin-agx-64gb"), get_model("phi2"),
                        Precision.FP16)
    return eng.run(batch_size=8, gen=GenerationSpec(8, 16), n_runs=2)


def test_energy_per_token_positive_and_consistent(result):
    ept = energy_per_token_j(result)
    assert ept > 0
    total_tokens = sum(b.request.total_tokens for b in result.batches)
    assert ept == pytest.approx(result.energy_j / total_tokens)


def test_edp_combines_energy_and_latency(result):
    assert energy_delay_product(result) == pytest.approx(
        result.energy_j * result.mean_latency_s
    )


def test_percentiles_ordered(result):
    pcts = step_latency_percentiles(result)
    assert pcts["p50"] <= pcts["p95"] <= pcts["p99"]
    assert pcts["p50"] > 0


def test_efficiency_row_fields(result):
    row = efficiency_row(result)
    assert row["model"] == "MS-Phi2"
    assert row["tokens_per_joule"] > 0
    assert {"p50", "p95", "p99", "edp_js"} <= set(row)


def test_oom_result_rejected():
    from repro.engine.runtime import RunResult

    oom = RunResult(model="x", device="d", precision=Precision.FP16,
                    batch_size=1, gen=GenerationSpec(1, 1),
                    power_mode="MAXN", oom=True)
    with pytest.raises(ConfigError):
        energy_per_token_j(oom)
    with pytest.raises(ConfigError):
        energy_delay_product(oom)
