"""Power-trace persistence."""

import pytest

from repro.errors import ConfigError
from repro.telemetry.logger import load_trace, save_trace, trace_summary
from repro.telemetry.sampler import PowerSample

TRACE = [
    PowerSample(0.0, 12.0, "idle"),
    PowerSample(2.0, 35.5, "prefill"),
    PowerSample(4.0, 41.25, "decode"),
    PowerSample(6.0, 40.75, "decode"),
]


def test_roundtrip(tmp_path):
    path = save_trace(tmp_path / "trace.csv", TRACE)
    back = load_trace(path)
    assert len(back) == 4
    for a, b in zip(TRACE, back):
        assert b.time_s == pytest.approx(a.time_s)
        assert b.power_w == pytest.approx(a.power_w)
        assert b.phase == a.phase


def test_summary_values():
    s = trace_summary(TRACE)
    assert s["duration_s"] == pytest.approx(6.0)
    assert s["samples"] == 4
    assert s["peak_power_w"] == pytest.approx(41.25)
    assert s["active_fraction"] == pytest.approx(0.75)
    assert s["energy_j"] > 0


def test_validation(tmp_path):
    with pytest.raises(ConfigError):
        save_trace(tmp_path / "x.csv", [])
    with pytest.raises(ConfigError):
        load_trace(tmp_path / "missing.csv")
    bad = tmp_path / "bad.csv"
    bad.write_text("a,b\n1,2\n")
    with pytest.raises(ConfigError):
        load_trace(bad)
    with pytest.raises(ConfigError):
        trace_summary([])


def test_summary_of_engine_trace(tmp_path, orin):
    """End-to-end: a real engine run's sampler trace survives the trip."""
    from repro.engine import GenerationSpec, ServingEngine
    from repro.models import get_model
    from repro.quant.dtypes import Precision

    eng = ServingEngine(orin, get_model("phi2"), Precision.FP16)
    eng.run(batch_size=16, gen=GenerationSpec(16, 32), n_runs=2)
    # Re-run capturing the sampler through a fresh run:
    # (samplers are internal; regenerate a trace directly instead)
    from repro.engine.state import EngineState
    from repro.power import ComponentUtilization, PowerModel
    from repro.sim import Environment
    from repro.telemetry import PowerSampler

    env = Environment()
    state = EngineState()
    sampler = PowerSampler(env, orin, PowerModel(), state)
    sampler.start()

    def work():
        state.set("decode", ComponentUtilization(0.4, 0.9, 0.6, 2.0))
        yield env.timeout(9.0)
        sampler.stop()

    env.process(work())
    env.run()
    path = save_trace(tmp_path / "t.csv", sampler.samples)
    assert trace_summary(load_trace(path))["samples"] == len(sampler.samples)
