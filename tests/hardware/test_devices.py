"""Device presets, registry, thermal model."""

import pytest

from repro.errors import ConfigError
from repro.hardware import (
    ThermalModel,
    a100_sxm_80gb,
    device_registry,
    get_device,
    orin_agx_32gb,
    orin_agx_64gb,
    xavier_agx_32gb,
)
from repro.units import gib


class TestPresets:
    def test_orin_64_matches_paper_specs(self):
        dev = orin_agx_64gb()
        assert dev.cpu.total_cores == 12
        assert dev.gpu.cuda_cores == 2048
        assert round(dev.gpu.max_freq_hz / 1e6) == 1301
        assert dev.memory.capacity_bytes == gib(64)
        assert dev.memory.peak_bandwidth == pytest.approx(204.8e9)
        assert dev.unified_memory
        assert not dev.gpu.int8_tensor_core_gemm

    def test_a100_has_native_int8_gemm_and_discrete_memory(self):
        dev = a100_sxm_80gb()
        assert dev.gpu.int8_tensor_core_gemm
        assert not dev.unified_memory
        assert dev.memory.peak_bandwidth > 9 * orin_agx_64gb().memory.peak_bandwidth

    def test_smaller_jetsons_are_strictly_weaker(self):
        big, small, xavier = orin_agx_64gb(), orin_agx_32gb(), xavier_agx_32gb()
        assert small.memory.capacity_bytes < big.memory.capacity_bytes
        assert small.gpu.cuda_cores < big.gpu.cuda_cores
        assert xavier.gpu.cuda_cores < small.gpu.cuda_cores

    def test_registry_returns_fresh_instances(self):
        d1 = get_device("jetson-orin-agx-64gb")
        d2 = get_device("jetson-orin-agx-64gb")
        assert d1 is not d2
        d1.gpu.set_freq(800e6)
        assert d2.gpu.freq_hz != d1.gpu.freq_hz

    def test_registry_contents(self):
        names = set(device_registry())
        assert {"jetson-orin-agx-64gb", "jetson-orin-agx-32gb",
                "jetson-xavier-agx-32gb", "a100-sxm-80gb"} <= names

    def test_unknown_device_rejected(self):
        with pytest.raises(ConfigError, match="unknown device"):
            get_device("rtx-5090")

    def test_reset_to_max(self):
        dev = orin_agx_64gb()
        dev.gpu.set_freq(400e6)
        dev.cpu.set_online_cores(4)
        dev.memory.set_freq(665e6)
        dev.reset_to_max()
        snap = dev.snapshot()
        assert snap["gpu_freq_hz"] == dev.gpu.max_freq_hz
        assert snap["cpu_online_cores"] == 12
        assert snap["mem_freq_hz"] == dev.memory.max_freq_hz


class TestThermal:
    def test_steady_state_temperature(self):
        th = ThermalModel(ambient_c=25.0, r_thermal_c_per_w=1.0)
        assert th.steady_state_c(40.0) == pytest.approx(65.0)

    def test_advance_approaches_steady_state(self):
        th = ThermalModel(tau_s=10.0)
        for _ in range(100):
            th.advance(power_w=50.0, dt_s=5.0)
        assert th.temp_c == pytest.approx(th.steady_state_c(50.0), abs=0.5)

    def test_throttle_hysteresis(self):
        th = ThermalModel(tau_s=1.0, throttle_temp_c=80.0, resume_temp_c=70.0)
        # Heat hard: should throttle.
        for _ in range(50):
            th.advance(power_w=60.0, dt_s=1.0)
        assert th.throttled
        assert th.freq_multiplier < 1.0
        # Cool below resume point: should recover.
        for _ in range(50):
            th.advance(power_w=5.0, dt_s=1.0)
        assert not th.throttled
        assert th.freq_multiplier == 1.0

    def test_invalid_hysteresis_rejected(self):
        with pytest.raises(ConfigError):
            ThermalModel(throttle_temp_c=70.0, resume_temp_c=80.0)
