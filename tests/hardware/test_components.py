"""CPU, GPU and memory component models."""

import pytest

from repro.errors import ConfigError
from repro.hardware import CpuCluster, Gpu, SharedMemory
from repro.quant.dtypes import Precision
from repro.units import gb_per_s, ghz, gib, mhz, tflops


def make_cpu(**kw):
    defaults = dict(name="test-cpu", total_cores=12, max_freq_hz=ghz(2.2))
    defaults.update(kw)
    return CpuCluster(**defaults)


def make_gpu(**kw):
    defaults = dict(
        name="test-gpu",
        cuda_cores=2048,
        max_freq_hz=mhz(1301),
        peak_flops={Precision.FP32: tflops(5.33), Precision.FP16: tflops(10.65)},
    )
    defaults.update(kw)
    return Gpu(**defaults)


def make_mem(**kw):
    defaults = dict(
        capacity_bytes=gib(64), max_freq_hz=mhz(3199),
        peak_bandwidth=gb_per_s(204.8),
    )
    defaults.update(kw)
    return SharedMemory(**defaults)


class TestCpu:
    def test_defaults_to_max_operating_point(self):
        cpu = make_cpu()
        assert cpu.freq_hz == cpu.max_freq_hz
        assert cpu.online_cores == cpu.total_cores

    def test_set_freq_validates_range(self):
        cpu = make_cpu()
        cpu.set_freq(ghz(1.2))
        assert cpu.freq_ratio == pytest.approx(1.2 / 2.2)
        with pytest.raises(ConfigError):
            cpu.set_freq(ghz(5.0))
        with pytest.raises(ConfigError):
            cpu.set_freq(1.0)

    def test_set_online_cores_validates(self):
        cpu = make_cpu()
        cpu.set_online_cores(4)
        assert cpu.online_cores == 4
        with pytest.raises(ConfigError):
            cpu.set_online_cores(0)
        with pytest.raises(ConfigError):
            cpu.set_online_cores(13)

    def test_serial_work_scales_inverse_with_freq(self):
        cpu = make_cpu()
        t_full = cpu.time_for_serial_work(1e9)
        cpu.set_freq(ghz(1.1))
        assert cpu.time_for_serial_work(1e9) == pytest.approx(2 * t_full)

    def test_parallel_work_obeys_amdahl(self):
        cpu = make_cpu()
        serial = cpu.time_for_parallel_work(1e9, parallel_fraction=0.0)
        perfect = cpu.time_for_parallel_work(1e9, parallel_fraction=1.0)
        assert perfect == pytest.approx(serial / 12)
        half = cpu.time_for_parallel_work(1e9, parallel_fraction=0.5)
        assert perfect < half < serial

    def test_bad_construction_rejected(self):
        with pytest.raises(ConfigError):
            make_cpu(total_cores=0)
        with pytest.raises(ConfigError):
            make_cpu(max_freq_hz=-1)


class TestGpu:
    def test_effective_flops_scale_with_clock(self):
        gpu = make_gpu()
        full = gpu.effective_flops(Precision.FP16)
        gpu.set_freq(mhz(650.5))
        assert gpu.effective_flops(Precision.FP16) == pytest.approx(full / 2)

    def test_quantized_precisions_compute_in_fp16(self):
        gpu = make_gpu()
        assert gpu.effective_flops(Precision.INT8) == gpu.effective_flops(Precision.FP16)
        assert gpu.effective_flops(Precision.INT4) == gpu.effective_flops(Precision.FP16)

    def test_fp32_slower_than_fp16(self):
        gpu = make_gpu()
        assert gpu.effective_flops(Precision.FP32) < gpu.effective_flops(Precision.FP16)

    def test_launch_overhead(self):
        gpu = make_gpu(kernel_launch_s=1e-5)
        assert gpu.launch_overhead(100) == pytest.approx(1e-3)
        with pytest.raises(ConfigError):
            gpu.launch_overhead(-1)

    def test_requires_fp16_entry(self):
        with pytest.raises(ConfigError):
            make_gpu(peak_flops={Precision.FP32: tflops(5.0)})


class TestMemory:
    def test_bandwidth_at_max_clock_uses_efficiency(self):
        mem = make_mem(streaming_efficiency=0.78)
        assert mem.streaming_bandwidth() == pytest.approx(204.8e9 * 0.78)

    def test_low_clock_bandwidth_is_sublinear(self):
        mem = make_mem()
        full = mem.streaming_bandwidth()
        mem.set_freq(mhz(665))
        ratio = mem.streaming_bandwidth() / full
        linear = 665 / 3199
        assert ratio < linear  # latency effects bite at low clocks
        assert ratio > 0.3 * linear

    def test_usable_bytes_excludes_reservation(self):
        mem = make_mem(reserved_bytes=gib(4))
        assert mem.usable_bytes == gib(60)

    def test_transfer_time(self):
        mem = make_mem(streaming_efficiency=0.5)
        assert mem.transfer_time(102.4e9) == pytest.approx(1.0)
        with pytest.raises(ConfigError):
            mem.transfer_time(-1)

    def test_strided_slower_than_streaming(self):
        mem = make_mem()
        assert mem.strided_bandwidth() < mem.streaming_bandwidth()
