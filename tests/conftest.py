"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.kernels import EngineCostParams
from repro.hardware import get_device
from repro.models.architecture import TransformerArchitecture


@pytest.fixture
def orin():
    """A fresh Orin AGX 64GB device (mutable per test)."""
    return get_device("jetson-orin-agx-64gb")


@pytest.fixture
def a100():
    return get_device("a100-sxm-80gb")


@pytest.fixture
def tiny_arch():
    """A CPU-feasible architecture for real numpy forward passes."""
    return TransformerArchitecture(
        name="tiny",
        hf_id="test/tiny",
        vocab_size=512,
        hidden_size=64,
        n_layers=2,
        n_heads=4,
        n_kv_heads=2,
        head_dim=16,
        intermediate_size=128,
    )


@pytest.fixture
def tiny_phi_arch():
    """Tiny model exercising the Phi-2 code paths (parallel block,
    LayerNorm, biases, partial rotary, MHA, eager attention)."""
    return TransformerArchitecture(
        name="tiny-phi",
        hf_id="test/tiny-phi",
        vocab_size=512,
        hidden_size=64,
        n_layers=2,
        n_heads=4,
        n_kv_heads=4,
        head_dim=16,
        intermediate_size=128,
        mlp_type="plain",
        attention_bias=True,
        mlp_bias=True,
        attention_impl="eager",
        norms_per_layer=1,
        partial_rotary_factor=0.5,
    )


@pytest.fixture
def fast_params():
    """Default cost params (explicit object so tests can override)."""
    return EngineCostParams()


@pytest.fixture
def rng():
    return np.random.default_rng(1234)
