"""BPE tokenizer: training, encoding, round-trips."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TokenizerError
from repro.tokenizer import BpeTokenizer, Vocab, train_bpe

CORPUS = (
    "the quick brown fox jumps over the lazy dog "
    "the quick brown fox likes the lazy dog "
    "a lazy dog sleeps while the quick fox runs "
) * 20


@pytest.fixture(scope="module")
def tok():
    return train_bpe(CORPUS, vocab_size=320)


class TestTraining:
    def test_vocab_contains_specials_and_bytes(self, tok):
        assert tok.vocab_size > 260
        assert tok.vocab.pad_id == 0 and tok.vocab.unk_id == 3

    def test_frequent_words_become_single_tokens(self, tok):
        # "the" appears constantly; with leading space it should merge.
        ids = tok.encode("the the the")
        assert len(ids) <= 4

    def test_empty_corpus_rejected(self):
        with pytest.raises(TokenizerError):
            train_bpe("")

    def test_vocab_size_must_exceed_alphabet(self):
        with pytest.raises(TokenizerError):
            train_bpe("hello", vocab_size=100)


class TestEncodeDecode:
    def test_roundtrip_on_training_text(self, tok):
        text = "the quick brown fox"
        assert tok.decode(tok.encode(text)) == text

    def test_roundtrip_on_unseen_text(self, tok):
        text = "zxqv unseen words 123!"
        assert tok.decode(tok.encode(text)) == text

    def test_bos_eos_flags(self, tok):
        ids = tok.encode("fox", add_bos=True, add_eos=True)
        assert ids[0] == tok.vocab.bos_id
        assert ids[-1] == tok.vocab.eos_id
        assert tok.decode(ids) == "fox"

    def test_count_tokens_consistent(self, tok):
        text = "the lazy dog sleeps"
        assert tok.count_tokens(text) == len(tok.encode(text))

    def test_compression_on_in_domain_text(self, tok):
        """Trained merges must beat raw bytes substantially."""
        text = "the quick brown fox jumps over the lazy dog"
        assert len(tok.encode(text)) < 0.5 * len(text.encode())


@given(st.text(alphabet=st.characters(codec="utf-8"), max_size=120))
@settings(max_examples=80, deadline=None)
def test_roundtrip_is_lossless_for_space_normalised_text(text):
    tok = train_bpe(CORPUS, vocab_size=300)
    # The tokenizer normalises word separation to single spaces.
    normalised = " ".join(text.split(" "))
    assert tok.decode(tok.encode(normalised)) == normalised


class TestVocab:
    def test_add_is_idempotent(self):
        v = Vocab()
        i1 = v.add(b"foo")
        i2 = v.add(b"foo")
        assert i1 == i2

    def test_lookup_errors(self):
        v = Vocab()
        with pytest.raises(TokenizerError):
            v.id_of(b"missing")
        with pytest.raises(TokenizerError):
            v.token_of(10_000)
        with pytest.raises(TokenizerError):
            v.add("not-bytes")  # type: ignore[arg-type]

    def test_contains_and_len(self):
        v = Vocab()
        n = len(v)
        v.add(b"tok")
        assert b"tok" in v and len(v) == n + 1
