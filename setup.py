"""Legacy setup shim.

The execution environment has no network and no ``wheel`` package, so
PEP 517/660 builds cannot run; this shim lets ``pip install -e .`` use
the classic ``setup.py develop`` path.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
