#!/usr/bin/env python3
"""Scenario: will this model fit my board, and what does quantization cost?

Given a model and a device, walks FP32 -> INT4 and reports, per
precision: does it fit, projected RAM, latency, throughput, power,
energy, and the predicted perplexity penalty (from the real-quantizer
error pipeline behind Table 3).  Ends with the deployment matrix the
paper's §3.3 motivates: memory savings are real, but on edge GPUs the
latency moves the *wrong* way.

Run:  python examples/quantization_planner.py [model] [device]
"""

import sys

from repro.core import ExperimentSpec, quantization_sweep
from repro.models import get_model
from repro.perplexity.analytical import perplexity_cell
from repro.hardware import get_device
from repro.quant.dtypes import PRECISION_ORDER
from repro.reporting import format_table


def main(model: str = "llama", device: str = "jetson-orin-agx-64gb") -> None:
    arch = get_model(model)
    dev = get_device(device)
    print(f"planning {arch.name} ({arch.n_params_billions:.1f}B) on {dev.name}\n")

    spec = ExperimentSpec.for_model(model, device=device, n_runs=3)
    runs = {r.precision: r for r in quantization_sweep(spec)}

    rows = []
    for prec in PRECISION_ORDER:
        r = runs[prec]
        ppl = perplexity_cell(arch.name, prec, "wikitext2", device=dev)
        if r.oom:
            rows.append({"precision": str(prec), "fits": False, "ram_gb": None,
                         "latency_s": None, "throughput_tok_s": None,
                         "power_w": None, "ppl_wikitext2": ppl})
            continue
        rows.append({
            "precision": str(prec),
            "fits": True,
            "ram_gb": round(r.model_gb + r.incremental_gb, 1),
            "latency_s": round(r.mean_latency_s, 2),
            "throughput_tok_s": round(r.throughput_tok_s, 1),
            "power_w": round(r.median_power_w, 1),
            "ppl_wikitext2": ppl,
        })
    print(format_table(rows, title="deployment matrix (bs=32, sl=96)"))

    feasible = [p for p in PRECISION_ORDER if not runs[p].oom]
    if not feasible:
        print("\nNothing fits this board.")
        return
    fastest = min(feasible, key=lambda p: runs[p].mean_latency_s)
    smallest = min(feasible, key=lambda p: runs[p].total_gb)
    print(f"\nfastest precision that fits : {fastest}")
    print(f"smallest footprint          : {smallest}")
    if fastest is not smallest:
        print("On this GPU quantization trades latency for memory — choose by")
        print("which constraint binds (the paper's central §3.3 finding).")


if __name__ == "__main__":
    main(*(sys.argv[1:3] or ["llama"]))
