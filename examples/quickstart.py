#!/usr/bin/env python3
"""Quickstart: measure one LLM serving configuration on a simulated Orin.

Loads Llama-3.1-8B at FP16 onto a simulated Jetson Orin AGX 64GB,
serves one batch configuration with the paper's measurement protocol
(warm-up + averaged runs, 2-second jtop-style power sampling), and
prints the metrics the paper reports: RAM, latency, token throughput,
median power and trapezoid-integrated energy.

Run:  python examples/quickstart.py
"""

from repro import GenerationSpec, Precision, ServingEngine, get_device, get_model
from repro.reporting import format_table


def main() -> None:
    device = get_device("jetson-orin-agx-64gb")
    model = get_model("llama")

    print(f"device : {device.name}  ({device.memory.usable_bytes / 1e9:.1f} GB usable)")
    print(f"model  : {model.name}  ({model.n_params_billions:.1f}B params, "
          f"{model.n_layers} layers, GQA {model.gqa_ratio}:1)")

    engine = ServingEngine(device, model, Precision.FP16)
    print(f"loaded : {engine.tracker.model_bytes / 1e9:.2f} GB of weights\n")

    rows = []
    for bs in (1, 8, 32, 128):
        result = engine.run(batch_size=bs, gen=GenerationSpec(32, 64), n_runs=3)
        rows.append(result.as_row())
    print(format_table(
        rows,
        columns=["batch_size", "ram_gb", "latency_s", "throughput_tok_s",
                 "power_w", "energy_j"],
        title="Llama-3.1-8B FP16 on Orin AGX 64GB (MaxN, sl=96)",
    ))

    print("\nLarger batches buy throughput at the cost of per-batch latency —")
    print("the paper's headline batching trade-off (its Fig. 1).")


if __name__ == "__main__":
    main()
