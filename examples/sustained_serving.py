#!/usr/bin/env python3
"""Scenario: is the headline throughput sustainable, thermally?

The paper measures short sessions; a deployed box serves for hours.
This example runs a 10-minute simulated serving session for Mistral-24B
on the Orin at MAXN and at power mode A, with a lumped thermal model of
a warm enclosure, and shows MAXN throttling away its advantage while
mode A holds steady — the §4 future-work question, answered with the
same cost model that reproduces the paper.

Run:  python examples/sustained_serving.py
"""

from repro.engine import GenerationSpec, run_sustained
from repro.hardware import get_device
from repro.hardware.thermal import ThermalModel
from repro.models import get_model
from repro.power.modes import apply_power_mode, get_power_mode
from repro.quant.dtypes import Precision
from repro.reporting import ascii_lines, format_table


def session(mode: str):
    device = get_device("jetson-orin-agx-64gb")
    apply_power_mode(device, get_power_mode(mode))
    thermal = ThermalModel(ambient_c=42.0, r_thermal_c_per_w=1.5, tau_s=60.0,
                           throttle_temp_c=88.0, resume_temp_c=82.0,
                           throttle_freq_ratio=0.55)
    return run_sustained(device, get_model("mistral"), Precision.FP16,
                         duration_s=600.0, batch_size=32,
                         gen=GenerationSpec(32, 64), thermal=thermal)


def main() -> None:
    results = {mode: session(mode) for mode in ("MAXN", "A")}

    rows = []
    for mode, samples in results.items():
        tps = [s.throughput_tok_s for s in samples]
        rows.append({
            "mode": mode,
            "batches": len(samples),
            "first_tp": round(tps[0], 1),
            "last_tp": round(tps[-1], 1),
            "mean_tp": round(sum(tps) / len(tps), 1),
            "peak_temp_c": round(max(s.temp_c for s in samples), 1),
            "throttled_frac": round(
                sum(s.throttled for s in samples) / len(samples), 2),
        })
    print(format_table(rows, title="10-minute sustained serving, Mistral-24B FP16"))

    n = 8
    series = {}
    for mode, samples in results.items():
        stride = max(1, len(samples) // n)
        series[mode] = [round(s.throughput_tok_s, 1)
                        for s in samples[::stride]][:n]
    labels = [f"{i * 600 // n}s" for i in range(n)]
    print()
    print(ascii_lines(series, labels, title="throughput over the session (tok/s)"))

    maxn, a = rows[0], rows[1]
    print(f"\nMAXN opens {maxn['first_tp'] / a['first_tp']:.2f}x faster but ")
    print(f"spends {maxn['throttled_frac']:.0%} of the session throttled; the")
    print("sustained averages tell the real story for deployment.")


if __name__ == "__main__":
    main()
