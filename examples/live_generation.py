#!/usr/bin/env python3
"""End-to-end *real* inference: tokenizer + numpy transformer + sampler.

Everything here actually computes: a BPE tokenizer is trained on the
synthetic WikiText2-like corpus, a small transformer (randomly
initialised — there is no pretraining budget on a laptop) ingests a
prompt from the paper-style prompt pool, generates with a KV cache at
each precision, and the sliding-window perplexity of each quantized
variant is measured over real forward passes — the same pipeline that
calibrates the Table 3 degradation model.

Run:  python examples/live_generation.py
"""

import numpy as np

from repro.datasets import build_workload
from repro.models.architecture import TransformerArchitecture
from repro.nn import NumpyTransformer
from repro.perplexity import sliding_window_perplexity
from repro.quant.dtypes import Precision
from repro.reporting import format_table


def main() -> None:
    print("building WikiText2-like workload (corpus + BPE + prompt pool)...")
    workload = build_workload("wikitext2")
    vocab_size = workload.tokenizer.vocab_size
    print(f"  pool: {len(workload.pool)} prompts >= 256 tokens, "
          f"vocab {vocab_size}\n")

    arch = TransformerArchitecture(
        name="demo-120m-scaled-down", hf_id="local/demo",
        vocab_size=vocab_size, hidden_size=96, n_layers=4, n_heads=8,
        n_kv_heads=4, head_dim=12, intermediate_size=192,
    )
    print(f"instantiating {arch.name}: {arch.n_params / 1e6:.1f}M params, "
          f"GQA {arch.gqa_ratio}:1")

    prompt_ids = np.array(workload.sample_batch(2, 24, seed=4))
    prompt_text = workload.tokenizer.decode(prompt_ids[0])
    print(f"\nprompt[0]: {prompt_text[:90]}...")

    model = NumpyTransformer(arch, Precision.FP32, seed=11)
    out = model.generate(prompt_ids, max_new_tokens=16, temperature=0.9,
                         top_k=40, seed=1)
    print(f"generated: {workload.tokenizer.decode(out[0])!r}\n")

    eval_ids = list(workload.pool.prompts[0].token_ids[:384])
    rows = []
    for prec in (Precision.FP32, Precision.FP16, Precision.INT8, Precision.INT4):
        m = NumpyTransformer(arch, prec, seed=11)
        ppl = sliding_window_perplexity(m, eval_ids, window=128, stride=64)
        rows.append({"precision": str(prec), "perplexity": round(ppl, 2)})
    print(format_table(rows, title="real sliding-window perplexity by precision"))
    print("\nFP16 tracks FP32; INT8 nudges perplexity up; INT4 degrades it")
    print("sharply — the shape of the paper's Table 3, measured on live")
    print("computation with this library's own quantization kernels.")


if __name__ == "__main__":
    main()
