#!/usr/bin/env python3
"""Scenario: routing policies over a heterogeneous edge fleet.

The paper characterises a single Orin; this example serves one bursty
(MMPP-2) request stream with a three-node fleet — Orin AGX 64GB,
Orin AGX 32GB and a Xavier AGX — under each routing policy, over the
same calibrated cost and power models.  The interesting comparison is
round-robin vs energy-aware: the fleet's J/token differs because the
energy-aware router starves the inefficient Xavier of traffic until
the Orins run out of headroom.

Run:  python examples/cluster_serving.py [requests_per_second]
"""

import sys

from repro.cluster import (
    EdgeCluster,
    FleetSpec,
    NodeSpec,
    SLOSpec,
    bursty_workload,
    list_policies,
)
from repro.reporting import format_table

FLEET = [
    NodeSpec("jetson-orin-agx-64gb"),
    NodeSpec("jetson-orin-agx-32gb"),
    NodeSpec("jetson-xavier-agx-32gb"),
]


def main(rate: float = 2.0) -> None:
    print("serving Llama3 FP16 on a simulated 3-node fleet "
          "(Orin 64GB + Orin 32GB + Xavier AGX)")
    print(f"workload: bursty MMPP-2 arrivals, calm {rate:.1f} req/s with "
          f"{8 * rate:.0f} req/s bursts, 80 requests of 64 in + 48 out\n")
    slo = SLOSpec(ttft_s=20.0, tpot_s=1.5)

    rows = []
    for policy in list_policies():
        cluster = EdgeCluster.of(
            FleetSpec.of(list(FLEET), model="llama", precision="fp16",
                         policy=policy),
            slo=slo,
        )
        reqs = bursty_workload(rate, 8.0 * rate, 80, input_tokens=64,
                               output_tokens=48, seed=13)
        rows.append(cluster.run(reqs).as_row())

    print(format_table(rows, title="routing policies, bursty trace"))

    by = {r["policy"]: r for r in rows}
    ea, rr = by["energy-aware"], by["round-robin"]
    saved = 100.0 * (1.0 - ea["j_per_token"] / rr["j_per_token"])
    print(f"\nenergy-aware vs round-robin: {ea['j_per_token']:.2f} vs "
          f"{rr['j_per_token']:.2f} J/token ({saved:+.0f}% saved) at "
          f"SLO attainment {ea['slo_attainment']:.2f} vs "
          f"{rr['slo_attainment']:.2f}")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 2.0)
