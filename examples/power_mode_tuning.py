#!/usr/bin/env python3
"""Scenario: pick a power mode for an energy- or power-constrained deployment.

Sweeps the paper's nine nvpmodel configurations (Table 2) for a chosen
model and ranks them three ways: lowest instantaneous power (thermal /
supply constrained), lowest energy per batch (battery constrained), and
lowest latency.  Reproduces the §3.4 analysis and prints a
recommendation per constraint.

Run:  python examples/power_mode_tuning.py [model]
"""

import sys

from repro.core import ExperimentSpec
from repro.core.sweeps import POWER_MODES, power_mode_sweep
from repro.reporting import ascii_bars, format_table


def main(model: str = "llama") -> None:
    runs = power_mode_sweep(ExperimentSpec.for_model(model, n_runs=3))
    maxn = next(r for r in runs if r.power_mode == "MAXN")

    rows = []
    for r in runs:
        rows.append({
            "mode": r.power_mode,
            "latency_s": round(r.mean_latency_s, 2),
            "latency_vs_maxn": f"{r.mean_latency_s / maxn.mean_latency_s - 1:+.0%}",
            "power_w": round(r.median_power_w, 1),
            "power_vs_maxn": f"{r.median_power_w / maxn.median_power_w - 1:+.0%}",
            "energy_j": round(r.energy_j, 0),
            "energy_vs_maxn": f"{r.energy_j / maxn.energy_j - 1:+.0%}",
        })
    print(format_table(rows, title=f"{runs[0].model}: power modes (bs=32, sl=96)"))
    print()
    print(ascii_bars({r.power_mode: r.energy_j for r in runs},
                     title="energy per measured session (J)", unit="J"))

    by = {r.power_mode: r for r in runs}
    best_power = min(runs, key=lambda r: r.median_power_w)
    best_energy = min(runs, key=lambda r: r.energy_j)
    best_latency = min(runs, key=lambda r: r.mean_latency_s)
    print("\nrecommendations")
    print(f"  power-constrained  : mode {best_power.power_mode} "
          f"({best_power.median_power_w:.1f} W)")
    print(f"  battery-constrained: mode {best_energy.power_mode} "
          f"({best_energy.energy_j:.0f} J/session)")
    print(f"  latency-critical   : mode {best_latency.power_mode} "
          f"({best_latency.mean_latency_s:.2f} s)")
    print("\nNote how mode B draws the least power yet wastes energy versus")
    print("mode A (latency grows faster than power falls), and how mode H —")
    print(f"memory at 665 MHz — inflates latency "
          f"{by['H'].mean_latency_s / maxn.mean_latency_s:.1f}x: decode is "
          "memory-bound (§3.4).")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "llama")
