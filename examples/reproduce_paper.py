#!/usr/bin/env python3
"""Reproduce the whole paper in one run.

Executes every experiment (Tables 1-7, Figures 1-11) on the simulated
Orin AGX 64GB, prints each artifact, and writes CSVs plus a summary
under ``examples/output/``.  This is the same machinery the benchmark
suite uses, packaged as a single script.

Run:  python examples/reproduce_paper.py [--quick]
      --quick uses 1 measured run per configuration instead of 5.
"""

import sys
from pathlib import Path

from repro.core.study import StudySpec, run_full_study
from repro.models import footprint_table, PAPER_MODELS
from repro.reporting import format_table, write_csv

OUT = Path(__file__).parent / "output"


def main(quick: bool = False) -> None:
    n_runs = 1 if quick else 5
    print(f"running the full study (n_runs={n_runs}) — this simulates "
          f"~300 measured configurations...\n")
    study = run_full_study(StudySpec(n_runs=n_runs), progress=True)
    OUT.mkdir(exist_ok=True)

    print("\n" + format_table(study.table1_footprints,
                              title="Table 1 — footprints (GB)"))
    write_csv(OUT / "table1.csv", study.table1_footprints)

    print("\n" + format_table(study.table3_perplexity,
                              title="Table 3 — perplexity"))
    write_csv(OUT / "table3.csv", study.table3_perplexity)

    for model, by_wl in study.batch_sweeps.items():
        rows = [r.as_row() for r in by_wl["wikitext2"]]
        print("\n" + format_table(rows, title=f"batch sweep — {model} (WikiText2)"))
        write_csv(OUT / f"batch_{model}.csv", rows)

    for model, by_wl in study.seqlen_sweeps.items():
        rows = [r.as_row() for r in by_wl["longbench"]]
        print("\n" + format_table(rows, title=f"seq-len sweep — {model} (LongBench)"))
        write_csv(OUT / f"seqlen_{model}.csv", rows)

    for model, runs in study.quant_sweeps.items():
        rows = [r.as_row() for r in runs]
        print("\n" + format_table(rows, title=f"quantization sweep — {model}"))
        write_csv(OUT / f"quant_{model}.csv", rows)

    for model, runs in study.power_mode_sweeps.items():
        rows = [r.as_row() for r in runs]
        print("\n" + format_table(rows, title=f"power modes — {model}"))
        write_csv(OUT / f"powermodes_{model}.csv", rows)

    print(f"\nall artifacts written under {OUT}/")


if __name__ == "__main__":
    main(quick="--quick" in sys.argv)
