#!/usr/bin/env python3
"""Scenario: beat the paper's hand-picked power modes automatically.

The Orin exposes thousands of nvpmodel operating points; the paper
samples nine by hand.  This example sweeps a 72-point frequency grid
with the calibrated models, extracts the latency/power/energy Pareto
frontier, and answers the two deployment questions the paper's §3.4
motivates: the fastest mode under a power cap, and the most
energy-frugal mode within a bounded slowdown.

Run:  python examples/power_autotune.py [model] [power_cap_watts]
"""

import sys

from repro.hardware import get_device
from repro.models import get_model
from repro.power.modes import get_power_mode
from repro.power.tuner import (
    best_energy_within_slowdown,
    best_under_power_cap,
    evaluate_mode,
    pareto_frontier,
    sweep_operating_points,
)
from repro.quant.dtypes import Precision
from repro.reporting import format_table


def main(model: str = "llama", cap_w: float = 28.0) -> None:
    device = get_device("jetson-orin-agx-64gb")
    arch = get_model(model)
    print(f"sweeping 6x3x4 = 72 operating points for {arch.name} FP16...\n")
    points = sweep_operating_points(device, arch, Precision.FP16)
    frontier = pareto_frontier(points)

    rows = [{
        "mode": p.mode.name,
        "latency_s": round(p.latency_s, 2),
        "power_w": round(p.power_w, 1),
        "energy_j": round(p.energy_j, 0),
    } for p in frontier]
    print(format_table(rows, title=f"Pareto frontier ({len(frontier)} of {len(points)} points)"))

    maxn = evaluate_mode(device, arch, Precision.FP16, get_power_mode("MAXN"))
    capped = best_under_power_cap(points, cap_w)
    frugal = best_energy_within_slowdown(points, 1.3)

    print(f"\nMAXN baseline        : {maxn.latency_s:.2f}s at {maxn.power_w:.1f}W, "
          f"{maxn.energy_j:.0f}J")
    if capped:
        print(f"fastest under {cap_w:.0f}W   : {capped.mode.name} — "
              f"{capped.latency_s:.2f}s at {capped.power_w:.1f}W")
    else:
        print(f"no grid point stays under {cap_w:.0f}W")
    if frugal:
        print(f"frugal (<=1.3x MAXN) : {frugal.mode.name} — "
              f"{frugal.energy_j:.0f}J "
              f"({frugal.energy_j / maxn.energy_j - 1:+.0%} energy vs MAXN)")

    # How do the paper's hand-picked modes compare?
    paper_a = evaluate_mode(device, arch, Precision.FP16, get_power_mode("A"))
    if frugal and frugal.energy_j <= paper_a.energy_j:
        print(f"\nThe tuned point beats the paper's mode A "
              f"({paper_a.energy_j:.0f}J) on energy — grid search pays.")


if __name__ == "__main__":
    args = sys.argv[1:]
    main(args[0] if args else "llama", float(args[1]) if len(args) > 1 else 28.0)
