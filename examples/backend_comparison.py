#!/usr/bin/env python3
"""Scenario: the same model served by three inference runtimes.

The paper benchmarks HF Transformers only and names dedicated inference
engines as future work (§4).  This example runs one model across the
pluggable runtime backends — the paper's HF stack, a llama.cpp-style
GGUF runtime, and a vLLM-style paged continuous-batching comparator —
over the same calibrated Orin cost model, and prints the cross-backend
comparison the reporting layer builds from the sweep.

The GGUF and paged cost models are calibrated qualitatively against the
on-device llama.cpp characterizations in Abstreiter et al. ("Sometimes
Painful but Certainly Promising") and Husom et al. ("Sustainable LLM
Inference for Edge AI"); see docs/mechanisms.md §10.

Run:  python examples/backend_comparison.py [model] [batch_size]
"""

import sys

from repro import (
    ExperimentSpec,
    get_backend,
    list_backends,
    run_experiment,
    runtime_comparison,
)
from repro.quant.dtypes import Precision
from repro.reporting import format_table


def main(model: str = "phi2", batch_size: int = 1) -> None:
    print(f"runtimes registered: {', '.join(list_backends())}")
    for name in list_backends():
        print(f"  {name:16s} {get_backend(name).description}")
    print(f"\nserving {model} INT4, batch {batch_size}, "
          f"on a simulated Orin AGX 64GB\n")

    results = [
        run_experiment(ExperimentSpec.for_model(
            model, precision=Precision.INT4, batch_size=batch_size,
            n_runs=2, runtime=name))
        for name in list_backends()
    ]
    print(format_table(runtime_comparison(results),
                       title=f"runtime comparison — {model}"))

    by_name = {r.runtime: r for r in results}
    hf, gguf = by_name["hf-transformers"], by_name["gguf"]
    if not (hf.oom or gguf.oom) and batch_size == 1:
        print(f"\nsingle-sequence decode: gguf at "
              f"{gguf.throughput_tok_s / hf.throughput_tok_s:.2f}x the HF "
              f"stack — the C++ host loop and fused ggml graph remove the")
        print("Python dispatch and launch overhead that dominates batch-1")
        print("decode on this hardware; batched serving erodes the gap.")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "phi2",
         int(sys.argv[2]) if len(sys.argv) > 2 else 1)
