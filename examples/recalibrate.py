#!/usr/bin/env python3
"""Regenerate the calibration constants from the paper's tables.

Fits the engine cost parameters (bounded least squares over the latency
columns of Tables 4 and 6) and the perplexity sensitivities (anchored on
Table 3's INT4 column), prints the values currently frozen in
``repro/calibration/constants.py`` next to the fresh fit, and reports
fit quality.  Edit the constants file with the printed values to adopt
a new fit.

Run:  python examples/recalibrate.py
"""

import math

import numpy as np

from repro.calibration.constants import CALIBRATED_COST_PARAMS, PPL_SENSITIVITY
from repro.calibration.fitting import (
    _latency_targets,
    fit_cost_params,
    fit_ppl_sensitivity,
    predict_latency,
)
from repro.reporting import format_table


def main() -> None:
    print("fitting engine cost parameters against Tables 4 & 6...")
    fitted = fit_cost_params()

    names = ("kernel_floor_s", "host_step_s", "host_per_seq_s", "bw_scale",
             "kv_traffic_scale", "int8_kv_penalty", "gemm_sat_tokens",
             "flops_scale")
    rows = [
        {"parameter": n,
         "frozen": f"{getattr(CALIBRATED_COST_PARAMS, n):.4g}",
         "fresh_fit": f"{getattr(fitted, n):.4g}"}
        for n in names
    ]
    rows.append({
        "parameter": "int8_cycles_per_param",
        "frozen": f"{CALIBRATED_COST_PARAMS.quant.int8_cycles_per_param:.4g}",
        "fresh_fit": f"{fitted.quant.int8_cycles_per_param:.4g}",
    })
    print(format_table(rows, title="engine cost parameters"))

    errs = []
    for model, bs, inp, outp, lat in _latency_targets():
        pred = predict_latency(fitted, model, bs, inp, outp, stride=8)
        errs.append(abs(math.log(pred / lat)))
    print(f"\nfit quality: rms log-error {float(np.sqrt(np.mean(np.square(errs)))):.3f}, "
          f"median abs {float(np.median(errs)):.3f} "
          f"over {len(errs)} published latencies")

    print("\nfitting perplexity sensitivities against Table 3...")
    sens = fit_ppl_sensitivity()
    rows = [
        {"model": m, "frozen": PPL_SENSITIVITY[m], "fresh_fit": round(s, 4)}
        for m, s in sens.items()
    ]
    print(format_table(rows, title="perplexity sensitivities"))


if __name__ == "__main__":
    main()
