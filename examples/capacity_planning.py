#!/usr/bin/env python3
"""Scenario: size a deployment before buying hardware.

For each paper model and each Jetson in the family, find the largest
feasible batch at the paper's default sequence length and the longest
feasible context at a fixed batch — the feasibility envelope behind the
paper's OOM cells, computed by searching the actual simulated engine.

Run:  python examples/capacity_planning.py
"""

from repro.core.experiment import default_precision_for
from repro.plan import probe_max_batch, probe_max_seq_len
from repro.reporting import format_table

DEVICES = ("jetson-orin-nx-16gb", "jetson-orin-agx-32gb",
           "jetson-orin-agx-64gb")
MODELS = ("phi2", "llama", "mistral", "deepq")


def main() -> None:
    rows = []
    for device in DEVICES:
        for model in MODELS:
            precision = default_precision_for(model)
            bs = probe_max_batch(model, precision, device=device, upper=512)
            sl = (probe_max_seq_len(model, precision, device=device,
                                    batch_size=8, upper=8192)
                  if bs else None)
            rows.append({
                "device": device,
                "model": model,
                "precision": precision.value,
                "max_batch@sl96": bs if bs is not None else "OOM",
                "max_seqlen@bs8": sl if sl is not None else "OOM",
            })
    print(format_table(rows, title="feasibility envelope (simulated Orin family)"))
    print("\n'OOM' rows: the model's weights alone exceed the board;")
    print("compare the paper's Table 3 OOM cells for the 64GB flagship.")


if __name__ == "__main__":
    main()
