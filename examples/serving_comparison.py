#!/usr/bin/env python3
"""Scenario: static batching (the paper's setup) vs continuous batching.

The paper's §4 points at dedicated inference engines as future work.
This example quantifies the headroom: a Poisson request stream is served
by the paper's run-to-completion static batching and by an Orca/vLLM
style iteration-level scheduler, over the same calibrated Orin cost
model.  Continuous batching collapses tail time-to-first-token because
arrivals no longer wait for a draining batch.

Run:  python examples/serving_comparison.py [requests_per_second]
"""

import copy
import sys

from repro.engine.scheduler import (
    ContinuousBatchScheduler,
    StaticBatchScheduler,
    poisson_workload,
)
from repro.hardware import get_device
from repro.models import get_model
from repro.quant.dtypes import Precision
from repro.reporting import format_table


def main(rate: float = 3.0) -> None:
    model = get_model("llama")
    print(f"serving {model.name} FP16 on a simulated Orin AGX 64GB")
    print(f"workload: Poisson arrivals at {rate:.1f} req/s, "
          f"64 requests of 32 in + 64 out tokens\n")
    reqs = poisson_workload(rate, 64, input_tokens=32, output_tokens=64, seed=7)

    rows = []
    for cls in (StaticBatchScheduler, ContinuousBatchScheduler):
        sched = cls(get_device("jetson-orin-agx-64gb"), model,
                    Precision.FP16, max_batch=32)
        report = sched.serve(copy.deepcopy(reqs))
        rows.append(report.as_row())
    print(format_table(rows, title="static vs continuous batching"))

    static, cont = rows
    print(f"\np95 time-to-first-token: {static['p95_ttft_s']}s -> "
          f"{cont['p95_ttft_s']}s "
          f"({static['p95_ttft_s'] / max(cont['p95_ttft_s'], 1e-9):.1f}x better)")
    print("Iteration-level scheduling admits arrivals mid-batch instead of")
    print("behind a draining one — the gap a dedicated inference engine buys")
    print("on this hardware before any kernel-level work.")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 3.0)
