#!/usr/bin/env python3
"""Scenario: should the edge box offload prefill to a nearby server?

The paper's §4 suggests "coupling edge inferencing with cloud
endpoints"; its ref [11] (Splitwise) splits the compute-bound prefill
from the memory-bound decode.  This example sweeps prompt lengths and
link speeds for Llama on the Orin, with an A100 as the prefill
offload target, and reports where the split pays.

Run:  python examples/edge_cloud_splitting.py
"""

from repro.engine.request import GenerationSpec
from repro.engine.splitwise import simulate_phase_split, split_break_even_prompt_tokens
from repro.hardware import get_device
from repro.models import get_model
from repro.quant.dtypes import Precision
from repro.reporting import format_table

LINKS = {"1 GbE": 1e9 / 8, "10 GbE": 10e9 / 8, "100 GbE": 100e9 / 8}


def main() -> None:
    arch = get_model("llama")
    a100 = get_device("a100-sxm-80gb")
    orin = get_device("jetson-orin-agx-64gb")
    print(f"{arch.name} FP16: Orin decodes; A100 prefills over a link\n")

    rows = []
    for prompt in (128, 512, 2048):
        for link_name, link in LINKS.items():
            res = simulate_phase_split(
                a100, orin, arch, Precision.FP16,
                gen=GenerationSpec(prompt, 64), link_bytes_per_s=link,
            )
            rows.append({
                "prompt_tokens": prompt,
                "link": link_name,
                "prefill_s": round(res.prefill_stage_s, 2),
                "transfer_s": round(res.kv_transfer_s, 2),
                "decode_s": round(res.decode_stage_s, 2),
                "collocated_s": round(res.collocated_batch_s, 2),
                "split_speedup": round(res.speedup, 2),
            })
    print(format_table(rows, title="phase-split steady state (bs=32, 64 output tokens)"))

    be = split_break_even_prompt_tokens(a100, orin, arch, Precision.FP16,
                                        output_tokens=64)
    print(f"\nbreak-even prompt length at 10 GbE, 64 output tokens: "
          f"{be if be else '> 8192'} tokens")
    print("Short prompts keep everything on the edge; summarisation-style")
    print("workloads (long prompt, short answer) are where the cloud-coupled")
    print("deployment the paper gestures at actually pays.")


if __name__ == "__main__":
    main()
